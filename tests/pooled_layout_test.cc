// Layout-equivalence tests for the pooled RR-sketch store
// (src/index/rr_sketch_pool.h): the CSR-of-CSRs flattening must be a pure
// representation change. Against a reference rebuild (the same per-sample
// RNG streams, generated into standalone owning RRGraphs) the pooled
// index must hold structurally identical sketches, identical containment
// lists, and bit-identical EstimateInfluence results — and the estimate
// hot path must stop allocating once its scratch has warmed up.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "running_example.h"
#include "src/index/rr_index.h"
#include "src/sampling/exact.h"

// Global allocation counter: every operator new in the test binary bumps
// it, so "zero allocations" is measured, not assumed. The replacement
// operators are malloc-backed; GCC's heuristic flags inlined new/free
// pairs from replacement allocators, which is exactly what we intend.
#if defined(__GNUC__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
namespace {
std::atomic<uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace pitex {
namespace {

constexpr uint64_t kSeed = 7;
constexpr uint64_t kTheta = 2000;

RrIndexOptions Options() {
  RrIndexOptions options;
  options.theta_override = kTheta;
  options.seed = kSeed;
  return options;
}

// Replicates RrIndex::Build's per-sample RNG stream derivation.
Rng StreamFor(uint64_t seed, uint64_t i) {
  uint64_t mix = seed ^ (0x9e3779b97f4a7c15ULL * (i + 1));
  return Rng(SplitMix64(&mix));
}

// The reference rebuild: standalone owning RRGraphs, no pool.
std::vector<RRGraph> ReferenceGraphs(const SocialNetwork& n) {
  std::vector<RRGraph> graphs(kTheta);
  for (uint64_t i = 0; i < kTheta; ++i) {
    Rng rng = StreamFor(kSeed, i);
    const auto root =
        static_cast<VertexId>(rng.NextBounded(n.num_vertices()));
    graphs[i] = GenerateRRGraph(n.graph, n.influence, root, &rng);
  }
  return graphs;
}

TEST(PooledLayoutTest, SketchesMatchReferenceRebuild) {
  const SocialNetwork n = MakeRunningExample();
  RrIndex index(n, Options());
  index.Build();
  const std::vector<RRGraph> reference = ReferenceGraphs(n);

  ASSERT_EQ(index.num_graphs(), reference.size());
  for (size_t i = 0; i < reference.size(); ++i) {
    const RRView pooled = index.graph(i);
    const RRView ref = reference[i];
    ASSERT_EQ(pooled.root, ref.root) << "graph " << i;
    ASSERT_TRUE(std::ranges::equal(pooled.vertices, ref.vertices))
        << "graph " << i;
    ASSERT_TRUE(std::ranges::equal(pooled.offsets, ref.offsets))
        << "graph " << i;
    ASSERT_EQ(pooled.edges.size(), ref.edges.size()) << "graph " << i;
    for (size_t j = 0; j < ref.edges.size(); ++j) {
      ASSERT_EQ(pooled.edges[j].head_local, ref.edges[j].head_local);
      ASSERT_EQ(pooled.edges[j].edge, ref.edges[j].edge);
      ASSERT_EQ(pooled.edges[j].threshold, ref.edges[j].threshold);
    }
  }
}

TEST(PooledLayoutTest, ContainingMatchesReferenceRebuild) {
  const SocialNetwork n = MakeRunningExample();
  RrIndex index(n, Options());
  index.Build();
  const std::vector<RRGraph> reference = ReferenceGraphs(n);

  uint64_t total = 0;
  for (VertexId v = 0; v < n.num_vertices(); ++v) {
    std::vector<uint32_t> expected;
    for (uint32_t i = 0; i < reference.size(); ++i) {
      if (reference[i].LocalIndex(v).has_value()) expected.push_back(i);
    }
    EXPECT_TRUE(std::ranges::equal(index.Containing(v), expected))
        << "vertex " << v;
    EXPECT_EQ(index.CountContaining(v), expected.size());
    total += expected.size();
  }
  EXPECT_EQ(index.pool().total_vertices(), total);
}

TEST(PooledLayoutTest, EstimatesBitIdenticalToReference) {
  const SocialNetwork n = MakeRunningExample();
  RrIndex index(n, Options());
  index.Build();
  const std::vector<RRGraph> reference = ReferenceGraphs(n);

  for (TagId a = 0; a < 4; ++a) {
    for (TagId b = a + 1; b < 4; ++b) {
      const TagId tags[] = {a, b};
      const auto post = n.topics.Posterior(tags);
      const PosteriorProbs probs(n.influence, post);
      for (VertexId u = 0; u < n.num_vertices(); ++u) {
        // Reference estimator: Algorithm 3 over the standalone graphs.
        uint64_t hits = 0, samples = 0, edges_visited = 0;
        for (const RRGraph& rr : reference) {
          if (!rr.LocalIndex(u).has_value()) continue;
          ++samples;
          if (IsReachable(rr, u, probs, &edges_visited)) ++hits;
        }
        double expected = static_cast<double>(hits) /
                          static_cast<double>(kTheta) *
                          static_cast<double>(n.num_vertices());
        expected = std::max(expected, 1.0);

        const Estimate est = index.EstimateInfluence(u, probs);
        EXPECT_EQ(est.influence, expected) << "user " << u;
        EXPECT_EQ(est.samples, samples) << "user " << u;
        EXPECT_EQ(est.edges_visited, edges_visited) << "user " << u;
      }
    }
  }
}

TEST(PooledLayoutTest, EstimateAllocatesNothingAfterWarmup) {
  const SocialNetwork n = MakeRunningExample();
  RrIndex index(n, Options());
  index.Build();
  const TagId tags[] = {2, 3};
  const auto post = n.topics.Posterior(tags);
  const PosteriorProbs probs(n.influence, post);

  // Warmup: grows the per-thread scratch to the largest sketch.
  double sink = 0.0;
  for (VertexId u = 0; u < n.num_vertices(); ++u) {
    sink += index.EstimateInfluence(u, probs).influence;
  }

  const uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int round = 0; round < 10; ++round) {
    for (VertexId u = 0; u < n.num_vertices(); ++u) {
      sink += index.EstimateInfluence(u, probs).influence;
    }
  }
  const uint64_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after, before) << "estimate hot path allocated";
  EXPECT_GT(sink, 0.0);
}

TEST(PooledLayoutTest, PoolTotalsConsistent) {
  const SocialNetwork n = MakeRunningExample();
  RrIndex index(n, Options());
  index.Build();
  const RrSketchPool& pool = index.pool();

  uint64_t vertices = 0, edges = 0;
  size_t max_sketch = 0;
  for (size_t i = 0; i < pool.num_sketches(); ++i) {
    const RRView view = pool.View(i);
    vertices += view.vertices.size();
    edges += view.edges.size();
    max_sketch = std::max(max_sketch, view.vertices.size());
    ASSERT_EQ(view.offsets.size(), view.vertices.size() + 1);
    ASSERT_EQ(view.offsets.back(), view.edges.size());
  }
  EXPECT_EQ(pool.total_vertices(), vertices);
  EXPECT_EQ(pool.total_edges(), edges);
  EXPECT_EQ(pool.max_sketch_vertices(), max_sketch);
  EXPECT_EQ(pool.num_universe_vertices(), n.num_vertices());
  // O(1) footprint accounting must cover at least the raw array bytes.
  EXPECT_GE(pool.SizeBytes(),
            vertices * sizeof(VertexId) + edges * sizeof(RRLocalEdge));
}

}  // namespace
}  // namespace pitex
