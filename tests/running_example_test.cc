// End-to-end validation of the paper's running example (Fig. 2 +
// Examples 1, 5, 6, 7): exact influence values and the k=2 optimum.

#include <gtest/gtest.h>

#include "running_example.h"
#include "src/core/enumeration_solver.h"
#include "src/core/tagset_enumerator.h"
#include "src/sampling/exact.h"

namespace pitex {
namespace {

// Example 1: E[I(u1 | {w1, w2})] = 1.5125.
TEST(RunningExampleTest, ExactInfluenceOfW1W2) {
  SocialNetwork n = MakeRunningExample();
  const TagId tags[] = {0, 1};
  EXPECT_NEAR(ExactInfluenceForTags(n, tags, 0), 1.5125, 1e-9);
}

// Example 1: the k=2 optimum for u1 is {w3, w4}.
TEST(RunningExampleTest, BestPairIsW3W4) {
  SocialNetwork n = MakeRunningExample();
  double best = 0.0;
  std::vector<TagId> best_tags;
  for (TagSetEnumerator it(4, 2); !it.Done(); it.Next()) {
    const double inf = ExactInfluenceForTags(n, it.Current(), 0);
    if (inf > best) {
      best = inf;
      best_tags = it.Current();
    }
  }
  EXPECT_EQ(best_tags, (std::vector<TagId>{2, 3}));
  // Exact optimum value: 1 + 0.5 * (1 + (4.5/13) * (1 + 4.5/13)).
  const double p = 4.5 / 13.0;
  EXPECT_NEAR(best, 1.0 + 0.5 * (1.0 + p * (1.0 + p)), 1e-9);
}

// All pairs containing exactly one of {w1,w2} and one of {w3,w4} put all
// posterior mass on z2, keeping only edge u1->u3: spread 1.5.
TEST(RunningExampleTest, CrossPairsHaveSpreadOnePointFive) {
  SocialNetwork n = MakeRunningExample();
  for (TagId a : {0u, 1u}) {
    for (TagId b : {2u, 3u}) {
      const TagId tags[] = {a, b};
      EXPECT_NEAR(ExactInfluenceForTags(n, tags, 0), 1.5, 1e-9)
          << "pair " << a << "," << b;
    }
  }
}

// Monotonicity sanity: a user with no outgoing edges has spread exactly 1.
TEST(RunningExampleTest, SinkUserHasUnitSpread) {
  SocialNetwork n = MakeRunningExample();
  const TagId tags[] = {2, 3};
  EXPECT_NEAR(ExactInfluenceForTags(n, tags, 6), 1.0, 1e-12);  // u7
  EXPECT_NEAR(ExactInfluenceForTags(n, tags, 4), 1.0, 1e-12);  // u5
}

// Example 6 context: u3's influence under {w3, w4} — computable exactly:
// u3 reaches u6 with 4.5/13 and u7 through u6; u4 unreachable (z1 edge).
TEST(RunningExampleTest, ExactInfluenceOfU3UnderW3W4) {
  SocialNetwork n = MakeRunningExample();
  const TagId tags[] = {2, 3};
  const double p = 4.5 / 13.0;
  EXPECT_NEAR(ExactInfluenceForTags(n, tags, 2), 1.0 + p * (1.0 + p), 1e-9);
}

// Single-tag queries: w3 and w4 are individually the strongest tags for u1.
TEST(RunningExampleTest, SingleTagRanking) {
  SocialNetwork n = MakeRunningExample();
  std::vector<double> spread(4);
  for (TagId w = 0; w < 4; ++w) {
    const TagId tags[] = {w};
    spread[w] = ExactInfluenceForTags(n, tags, 0);
  }
  EXPECT_GT(spread[2], spread[0]);
  EXPECT_GT(spread[2], spread[1]);
  EXPECT_NEAR(spread[2], spread[3], 1e-12);  // w3 and w4 are symmetric
}

}  // namespace
}  // namespace pitex
