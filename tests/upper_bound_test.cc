// Property tests for the Lemma-8 upper bounds: admissibility
// (p+(e|W) >= p(e|W') for every completion W' of W) on the running example
// and on randomized models, plus the sparse/dense regime behaviour.

#include <gtest/gtest.h>

#include "running_example.h"
#include "src/core/tagset_enumerator.h"
#include "src/core/upper_bound.h"
#include "src/util/random.h"

namespace pitex {
namespace {

// Checks p+(e|partial) >= p(e|full) for every size-k superset `full` of
// `partial`, every edge.
void CheckAdmissible(const SocialNetwork& n, const UpperBoundContext& ctx,
                     std::span<const TagId> partial, size_t k) {
  const UpperBoundProbs bound(n.influence, ctx, partial, k);
  for (TagSetEnumerator it(n.topics.num_tags(), k); !it.Done(); it.Next()) {
    const auto& full = it.Current();
    bool contains = true;
    for (TagId w : partial) {
      if (std::find(full.begin(), full.end(), w) == full.end()) {
        contains = false;
        break;
      }
    }
    if (!contains) continue;
    const auto post = n.topics.Posterior(full);
    for (EdgeId e = 0; e < n.num_edges(); ++e) {
      const double actual = n.influence.EdgeProb(e, post);
      EXPECT_GE(bound.Prob(e) + 1e-9, actual)
          << "edge " << e << " partial size " << partial.size();
    }
  }
}

TEST(UpperBoundTest, EmptySetBoundIsEnvelope) {
  SocialNetwork n = MakeRunningExample();
  const UpperBoundContext ctx(n.topics);
  const UpperBoundProbs bound(n.influence, ctx, {}, 2);
  for (EdgeId e = 0; e < n.num_edges(); ++e) {
    // W.L.O.G. p+(e | {}) = max_z p(e|z) (Lemma 8) — Eq. 6 may only make
    // it smaller, never smaller than any true p(e|W).
    EXPECT_LE(bound.Prob(e), n.influence.MaxProb(e) + 1e-12);
  }
  CheckAdmissible(n, ctx, {}, 2);
}

TEST(UpperBoundTest, AdmissibleForAllSingletonsRunningExample) {
  SocialNetwork n = MakeRunningExample();
  const UpperBoundContext ctx(n.topics);
  for (TagId w = 0; w < 4; ++w) {
    const TagId partial[] = {w};
    CheckAdmissible(n, ctx, partial, 2);
  }
}

TEST(UpperBoundTest, AdmissibleForK3RunningExample) {
  SocialNetwork n = MakeRunningExample();
  const UpperBoundContext ctx(n.topics);
  CheckAdmissible(n, ctx, {}, 3);
  for (TagId a = 0; a < 4; ++a) {
    const TagId p1[] = {a};
    CheckAdmissible(n, ctx, p1, 3);
    for (TagId b = a + 1; b < 4; ++b) {
      const TagId p2[] = {a, b};
      CheckAdmissible(n, ctx, p2, 3);
    }
  }
}

TEST(UpperBoundTest, IncompatibleTopicContributesNothing) {
  SocialNetwork n = MakeRunningExample();
  const UpperBoundContext ctx(n.topics);
  // w1 (id 0) is incompatible with z3; edge e6 (u6->u7) is z3-only, so its
  // bound under partial {w1} must be 0.
  const TagId partial[] = {0};
  const UpperBoundProbs bound(n.influence, ctx, partial, 2);
  EXPECT_EQ(bound.Prob(6), 0.0);
}

TEST(UpperBoundTest, CompatibleMaskMatchesPosterior) {
  SocialNetwork n = MakeRunningExample();
  const UpperBoundContext ctx(n.topics);
  EXPECT_TRUE(ctx.Compatible({}, 0));
  const TagId w3[] = {2};
  EXPECT_FALSE(ctx.Compatible(w3, 0));  // w3 has p(w|z1) = 0
  EXPECT_TRUE(ctx.Compatible(w3, 1));
  EXPECT_TRUE(ctx.Compatible(w3, 2));
}

// Randomized admissibility sweep over dense and sparse random models.
class UpperBoundRandomTest : public testing::TestWithParam<double> {};

INSTANTIATE_TEST_SUITE_P(Densities, UpperBoundRandomTest,
                         testing::Values(0.3, 0.6, 1.0));

TEST_P(UpperBoundRandomTest, AdmissibleOnRandomModels) {
  const double density = GetParam();
  Rng rng(static_cast<uint64_t>(density * 1000));
  const size_t num_topics = 4, num_tags = 6, num_edges = 10;

  SocialNetwork n;
  GraphBuilder gb(num_edges + 1);
  for (VertexId v = 0; v < num_edges; ++v) gb.AddEdge(v, v + 1);
  n.graph = gb.Build();

  n.topics = TopicModel(num_topics, num_tags);
  for (TagId w = 0; w < num_tags; ++w) {
    for (TopicId z = 0; z < num_topics; ++z) {
      if (rng.NextBernoulli(density)) {
        n.topics.SetTagTopic(w, z, 0.1 + 0.9 * rng.NextDouble());
      }
    }
  }
  InfluenceGraphBuilder ib(num_edges);
  for (EdgeId e = 0; e < num_edges; ++e) {
    std::vector<EdgeTopicEntry> entries;
    for (TopicId z = 0; z < num_topics; ++z) {
      if (rng.NextBernoulli(0.5)) {
        entries.push_back({z, rng.NextDouble()});
      }
    }
    ib.SetEdgeTopics(e, entries);
  }
  n.influence = ib.Build();

  const UpperBoundContext ctx(n.topics);
  const size_t k = 3;
  CheckAdmissible(n, ctx, {}, k);
  for (TagId w = 0; w < num_tags; ++w) {
    const TagId p1[] = {w};
    CheckAdmissible(n, ctx, p1, k);
  }
  const TagId p2[] = {1, 4};
  CheckAdmissible(n, ctx, p2, k);
}

// On a dense model, Eq. 6 should sometimes beat Eq. 5 (that is its
// purpose): when every available tag is unlikely under the edge's topic,
// the posterior on that topic is provably small and the bound drops below
// the naive max_z p(e|z).
TEST(UpperBoundTest, DenseBoundTighterThanNaiveMaxSomewhere) {
  const size_t num_topics = 3, num_tags = 6;
  SocialNetwork n;
  GraphBuilder gb(2);
  gb.AddEdge(0, 1);
  n.graph = gb.Build();
  n.topics = TopicModel(num_topics, num_tags);
  for (TagId w = 0; w < num_tags; ++w) {
    // Dense matrix: every tag is strong on z0 and z2 but weak on z1, so no
    // size-2 tag set can put much posterior mass on z1.
    n.topics.SetTagTopic(w, 0, 0.9);
    n.topics.SetTagTopic(w, 1, 0.05);
    n.topics.SetTagTopic(w, 2, 0.9);
  }
  InfluenceGraphBuilder ib(1);
  const EdgeTopicEntry entries[] = {{1, 0.9}};  // the edge lives on z1 only
  ib.SetEdgeTopics(0, entries);
  n.influence = ib.Build();

  const UpperBoundContext ctx(n.topics);
  const TagId partial[] = {0};
  const UpperBoundProbs bound(n.influence, ctx, partial, 2);
  // Eq. 5 alone would give 0.9; Eq. 6 must be far tighter here.
  EXPECT_LT(bound.Prob(0), 0.1);
  CheckAdmissible(n, ctx, partial, 2);
  CheckAdmissible(n, ctx, {}, 2);
}

}  // namespace
}  // namespace pitex
