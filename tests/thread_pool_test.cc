// Tests for the worker pool (src/util/thread_pool.h): completion,
// quiescence semantics, nested submission, and ParallelFor coverage.

#include "src/util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <thread>
#include <vector>

namespace pitex {
namespace {

TEST(ThreadPoolTest, RunsEveryTask) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 1000; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 1000);
}

TEST(ThreadPoolTest, AtLeastOneWorker) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<bool> ran{false};
  pool.Submit([&ran] { ran = true; });
  pool.Wait();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPoolTest, WaitWithNothingSubmittedReturns) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
}

TEST(ThreadPoolTest, WaitCoversNestedSubmissions) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  pool.Submit([&pool, &counter] {
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
  });
  pool.Wait();
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, TasksRunConcurrently) {
  ThreadPool pool(4);
  std::atomic<int> running{0};
  std::atomic<int> peak{0};
  for (int i = 0; i < 8; ++i) {
    pool.Submit([&running, &peak] {
      const int now = running.fetch_add(1) + 1;
      int expected = peak.load();
      while (expected < now &&
             !peak.compare_exchange_weak(expected, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      running.fetch_sub(1);
    });
  }
  pool.Wait();
  EXPECT_GE(peak.load(), 2);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 200; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
  }
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPoolTest, SubmitIndexedReceivesValidWorkerIndex) {
  ThreadPool pool(4);
  std::atomic<int> bad{0};
  std::atomic<int> ran{0};
  for (int i = 0; i < 500; ++i) {
    pool.SubmitIndexed([&pool, &bad, &ran](size_t worker) {
      if (worker >= pool.num_threads()) bad.fetch_add(1);
      ran.fetch_add(1);
    });
  }
  pool.Wait();
  EXPECT_EQ(ran.load(), 500);
  EXPECT_EQ(bad.load(), 0);
}

TEST(ThreadPoolTest, SubmitIndexedSerializesPerIndex) {
  // Two tasks observing the same worker index never overlap: the index
  // is an exclusive slot (the serving layer keys engine replicas by it).
  ThreadPool pool(4);
  std::vector<std::atomic<int>> active(pool.num_threads());
  std::atomic<int> overlaps{0};
  for (int i = 0; i < 200; ++i) {
    pool.SubmitIndexed([&active, &overlaps](size_t worker) {
      if (active[worker].fetch_add(1) != 0) overlaps.fetch_add(1);
      std::this_thread::sleep_for(std::chrono::microseconds(50));
      active[worker].fetch_sub(1);
    });
  }
  pool.Wait();
  EXPECT_EQ(overlaps.load(), 0);
}

TEST(ThreadPoolTest, LongLivedIndexedTasksCoverDistinctWorkers) {
  // N parked tasks on an N-worker pool must land on N distinct indices —
  // the property the serving pumps rely on.
  constexpr size_t kWorkers = 3;
  ThreadPool pool(kWorkers);
  std::vector<std::atomic<int>> seen(kWorkers);
  std::atomic<size_t> parked{0};
  std::atomic<bool> release{false};
  for (size_t i = 0; i < kWorkers; ++i) {
    pool.SubmitIndexed([&seen, &parked, &release](size_t worker) {
      seen[worker].fetch_add(1);
      parked.fetch_add(1);
      while (!release.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
  }
  while (parked.load(std::memory_order_acquire) < kWorkers) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  release.store(true, std::memory_order_release);
  pool.Wait();
  for (size_t i = 0; i < kWorkers; ++i) {
    EXPECT_EQ(seen[i].load(), 1) << "worker " << i;
  }
}

TEST(ThreadPoolTest, ShutdownRejectsNewSubmissions) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  EXPECT_TRUE(pool.Submit([&counter] { counter.fetch_add(1); }));
  pool.Wait();
  pool.Shutdown();
  // Defined rejection, not UB: both entry points return false and the
  // rejected callables never run.
  EXPECT_FALSE(pool.Submit([&counter] { counter.fetch_add(100); }));
  EXPECT_FALSE(
      pool.SubmitIndexed([&counter](size_t) { counter.fetch_add(100); }));
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, ShutdownDrainsAlreadyQueuedTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  std::atomic<bool> release{false};
  // Park the workers so the follow-up tasks are still queued when
  // Shutdown lands.
  for (int i = 0; i < 2; ++i) {
    pool.Submit([&release] {
      while (!release.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
  }
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(pool.Submit([&counter] { counter.fetch_add(1); }));
  }
  pool.Shutdown();
  release.store(true, std::memory_order_release);
  pool.Wait();
  // Shutdown stops *acceptance*; work accepted before it still runs.
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, ShutdownIsIdempotent) {
  ThreadPool pool(2);
  pool.Shutdown();
  pool.Shutdown();
  EXPECT_FALSE(pool.Submit([] {}));
}

TEST(ThreadPoolTest, SubmitFromTaskAfterShutdownIsSafe) {
  // A running task that tries to re-submit after Shutdown gets the same
  // defined rejection as an external caller.
  ThreadPool pool(2);
  std::atomic<int> rejected{0};
  std::atomic<bool> shut{false};
  pool.Submit([&pool, &rejected, &shut] {
    while (!shut.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    if (!pool.Submit([] {})) rejected.fetch_add(1);
  });
  pool.Shutdown();
  shut.store(true, std::memory_order_release);
  pool.Wait();
  EXPECT_EQ(rejected.load(), 1);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(5000);
  ParallelFor(&pool, 0, hits.size(),
              [&hits](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, EmptyAndSingletonRanges) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  ParallelFor(&pool, 10, 10, [&counter](size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 0);
  ParallelFor(&pool, 10, 11, [&counter](size_t i) {
    EXPECT_EQ(i, 10u);
    counter.fetch_add(1);
  });
  EXPECT_EQ(counter.load(), 1);
}

TEST(ParallelForTest, OffsetRange) {
  ThreadPool pool(3);
  std::atomic<long long> sum{0};
  ParallelFor(&pool, 100, 200,
              [&sum](size_t i) { sum.fetch_add(static_cast<long long>(i)); });
  long long expected = 0;
  for (size_t i = 100; i < 200; ++i) expected += static_cast<long long>(i);
  EXPECT_EQ(sum.load(), expected);
}

TEST(ParallelForSlotsTest, CoversEveryIndexWithValidSlots) {
  ThreadPool pool(4);
  const size_t total = 5000;
  std::vector<std::atomic<int>> hits(total);
  std::atomic<int> bad_slot{0};
  ParallelForSlots(&pool, 0, total, [&](size_t slot, size_t i) {
    if (slot >= std::min<size_t>(4, total)) bad_slot.fetch_add(1);
    hits[i].fetch_add(1);
  });
  EXPECT_EQ(bad_slot.load(), 0);
  for (size_t i = 0; i < total; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForSlotsTest, SlotsNeverOverlap) {
  // Invocations sharing a slot are serialized — the property per-slot
  // arenas in the index build rely on.
  ThreadPool pool(4);
  std::vector<std::atomic<int>> active(4);
  std::atomic<int> overlaps{0};
  ParallelForSlots(&pool, 0, 500, [&](size_t slot, size_t) {
    if (active[slot].fetch_add(1) != 0) overlaps.fetch_add(1);
    std::this_thread::sleep_for(std::chrono::microseconds(10));
    active[slot].fetch_sub(1);
  });
  EXPECT_EQ(overlaps.load(), 0);
}

TEST(ParallelForTest, GuidedClaimsBalanceSkewedTail) {
  // A power-law cost profile (one huge item near the end) must not leave
  // the range uncovered or double-claimed under guided chunking.
  ThreadPool pool(4);
  const size_t total = 2000;
  std::vector<std::atomic<int>> hits(total);
  ParallelFor(&pool, 0, total, [&hits, total](size_t i) {
    if (i == total - 7) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    hits[i].fetch_add(1);
  });
  for (size_t i = 0; i < total; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, PoolReusableAcrossCalls) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int round = 0; round < 10; ++round) {
    ParallelFor(&pool, 0, 100, [&counter](size_t) { counter.fetch_add(1); });
  }
  EXPECT_EQ(counter.load(), 1000);
}

}  // namespace
}  // namespace pitex
