// Tests for the online serving subsystem (src/serve/pitex_service.h):
// deterministic mode must reproduce BatchEngine bit-identically across a
// thread-count sweep, work-stealing mode must answer every query validly
// and keep its counters consistent, the result cache must memoize per
// epoch, and streaming Submit must deliver.

#include "src/serve/pitex_service.h"

#include <gtest/gtest.h>

#include <future>
#include <set>
#include <vector>

#include "running_example.h"
#include "src/core/batch_engine.h"
#include "src/datasets/synthetic.h"

namespace pitex {
namespace {

std::vector<PitexQuery> MakeQueries(const SocialNetwork& n, size_t count,
                                    size_t k = 2) {
  std::vector<PitexQuery> queries;
  queries.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    queries.push_back(
        {.user = static_cast<VertexId>(i % n.num_vertices()), .k = k});
  }
  return queries;
}

// The headline determinism contract: for every thread count, the
// deterministic schedule reproduces BatchEngine::ExploreAll exactly —
// same tags, same influence, same execution counters — because the
// worker assignment, seed derivation, index build, and per-worker serve
// order are all pinned to BatchEngine's.
class DeterministicSweepTest
    : public ::testing::TestWithParam<std::tuple<Method, size_t>> {};

TEST_P(DeterministicSweepTest, BitIdenticalToBatchEngine) {
  const auto [method, threads] = GetParam();
  const SocialNetwork n = MakeRunningExample();

  EngineOptions engine;
  engine.method = method;
  engine.seed = 9;
  engine.index_theta_per_vertex = 150.0;

  BatchOptions batch_options;
  batch_options.engine = engine;
  batch_options.num_threads = threads;
  BatchEngine batch(&n, batch_options);

  ServeOptions serve_options;
  serve_options.engine = engine;
  serve_options.num_threads = threads;
  serve_options.mode = ScheduleMode::kDeterministic;
  PitexService service(&n, serve_options);

  const auto queries = MakeQueries(n, 13);  // not divisible by threads
  // Two rounds: sampler RNG state must stay in lockstep across batches.
  for (int round = 0; round < 2; ++round) {
    const auto expected = batch.ExploreAll(queries);
    const auto served = service.ServeAll(queries);
    ASSERT_EQ(served.size(), expected.size());
    for (size_t i = 0; i < served.size(); ++i) {
      EXPECT_EQ(served[i].result.tags, expected[i].tags)
          << "round " << round << " query " << i;
      EXPECT_DOUBLE_EQ(served[i].result.influence, expected[i].influence);
      EXPECT_EQ(served[i].result.sets_evaluated, expected[i].sets_evaluated);
      EXPECT_EQ(served[i].result.sets_pruned, expected[i].sets_pruned);
      EXPECT_EQ(served[i].result.bounds_evaluated,
                expected[i].bounds_evaluated);
      EXPECT_EQ(served[i].result.total_samples, expected[i].total_samples);
      EXPECT_EQ(served[i].result.edges_visited, expected[i].edges_visited);
      EXPECT_EQ(served[i].worker, i % threads);
      EXPECT_FALSE(served[i].cache_hit);
      EXPECT_FALSE(served[i].stolen);
    }
  }
  // Deterministic mode never steals and never caches.
  ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.steals, 0u);
  EXPECT_EQ(stats.cache_hits, 0u);
  EXPECT_EQ(stats.queries_served, 2u * queries.size());
}

INSTANTIATE_TEST_SUITE_P(
    MethodsAndThreads, DeterministicSweepTest,
    ::testing::Combine(::testing::Values(Method::kLazy, Method::kIndexEst,
                                         Method::kDelayMat),
                       ::testing::Values(size_t{1}, size_t{2}, size_t{3},
                                         size_t{4})),
    [](const auto& param_info) {
      std::string name = MethodName(std::get<0>(param_info.param));
      for (char& c : name) {
        if (c == '+') c = 'P';
      }
      return name + "_" + std::to_string(std::get<1>(param_info.param)) + "thr";
    });

TEST(PitexServiceTest, WorkStealingAnswersEveryQuery) {
  const SocialNetwork n = MakeRunningExample();
  ServeOptions options;
  options.engine.method = Method::kIndexEstPlus;
  options.engine.index_theta_per_vertex = 150.0;
  options.num_threads = 4;
  options.cache_capacity = 0;  // count engine executions exactly
  PitexService service(&n, options);

  const auto queries = MakeQueries(n, 40);
  const auto served = service.ServeAll(queries);
  ASSERT_EQ(served.size(), queries.size());
  uint64_t epoch = 0;
  for (size_t i = 0; i < served.size(); ++i) {
    EXPECT_EQ(served[i].result.tags.size(), queries[i].k) << "query " << i;
    EXPECT_GE(served[i].result.influence, 1.0);
    EXPECT_EQ(served[i].ranking.size(), 1u);
    EXPECT_LT(served[i].worker, options.num_threads);
    if (i == 0) epoch = served[i].epoch;
    EXPECT_EQ(served[i].epoch, epoch);  // no updates: one epoch
  }
  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.queries_served, queries.size());
  uint64_t sum = 0;
  ASSERT_EQ(stats.per_worker_served.size(), options.num_threads);
  for (const uint64_t served_by_worker : stats.per_worker_served) {
    sum += served_by_worker;
  }
  EXPECT_EQ(sum, queries.size());
  EXPECT_EQ(stats.latency.count, queries.size());
  EXPECT_GT(stats.latency.p99 + 1e-12, stats.latency.p50);
  EXPECT_GT(service.SharedIndexSizeBytes(), 0u);
}

TEST(PitexServiceTest, ResultCacheMemoizesRepeats) {
  const SocialNetwork n = MakeRunningExample();
  ServeOptions options;
  options.engine.method = Method::kIndexEst;
  options.engine.index_theta_per_vertex = 150.0;
  options.num_threads = 2;
  options.cache_capacity = 64;
  PitexService service(&n, options);

  // 30 queries over 3 distinct users: at most 3 engine executions.
  std::vector<PitexQuery> queries;
  for (size_t i = 0; i < 30; ++i) {
    queries.push_back({.user = static_cast<VertexId>(i % 3), .k = 2});
  }
  const auto served = service.ServeAll(queries);
  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.queries_served, queries.size());
  // Concurrent queries for the same user may both miss (no request
  // coalescing), so the worst case is one engine execution per (user,
  // worker) pair rather than per user.
  const uint64_t worst_case_misses = 3 * options.num_threads;
  EXPECT_GE(stats.cache_hits, queries.size() - worst_case_misses);
  EXPECT_LE(stats.cache_misses, worst_case_misses);
  EXPECT_LE(stats.cache_entries, 3u);

  // Hits replay the miss's answer verbatim (IndexEst is deterministic,
  // so the engine would produce the same answer anyway — the cache must
  // not change it).
  for (size_t i = 3; i < served.size(); ++i) {
    const size_t first = i % 3;
    EXPECT_EQ(served[i].result.tags, served[first].result.tags);
    EXPECT_DOUBLE_EQ(served[i].result.influence,
                     served[first].result.influence);
    if (served[i].cache_hit) {
      EXPECT_EQ(served[i].result.total_samples, 0u);  // no work done
    }
  }
}

TEST(PitexServiceTest, SubmitDeliversFutures) {
  const SocialNetwork n = MakeRunningExample();
  ServeOptions options;
  options.engine.method = Method::kLazy;
  options.num_threads = 3;
  PitexService service(&n, options);

  std::vector<std::future<ServedResult>> futures;
  for (size_t i = 0; i < 12; ++i) {
    futures.push_back(
        service.Submit({.user = static_cast<VertexId>(i % 7), .k = 2}));
  }
  for (auto& future : futures) {
    const ServedResult result = future.get();
    EXPECT_EQ(result.result.tags.size(), 2u);
    EXPECT_GE(result.result.influence, 1.0);
  }
  EXPECT_EQ(service.Stats().queries_served, 12u);
}

TEST(PitexServiceTest, TopNRankingsAreOrdered) {
  const SocialNetwork n = MakeRunningExample();
  ServeOptions options;
  options.engine.method = Method::kIndexEst;
  options.engine.index_theta_per_vertex = 150.0;
  options.num_threads = 2;
  options.top_n = 3;
  PitexService service(&n, options);

  const auto served = service.ServeAll(MakeQueries(n, 7));
  for (const ServedResult& result : served) {
    ASSERT_GE(result.ranking.size(), 1u);
    ASSERT_LE(result.ranking.size(), 3u);
    EXPECT_EQ(result.result.tags, result.ranking[0].tags);
    for (size_t i = 1; i < result.ranking.size(); ++i) {
      EXPECT_GE(result.ranking[i - 1].influence, result.ranking[i].influence);
    }
  }
}

TEST(PitexServiceTest, ApplyUpdatesPublishesNewEpochAndReclaimsOld) {
  const SocialNetwork n = MakeRunningExample();
  ServeOptions options;
  options.engine.method = Method::kIndexEst;
  options.engine.index_theta_per_vertex = 150.0;
  options.num_threads = 2;
  // Deterministic mode guarantees both workers serve queries after the
  // update (round-robin), so both unpin the old epoch.
  options.mode = ScheduleMode::kDeterministic;
  options.enable_updates = true;
  PitexService service(&n, options);

  const auto queries = MakeQueries(n, 8);
  const auto before = service.ServeAll(queries);
  EXPECT_EQ(service.current_epoch(), 1u);
  for (const ServedResult& result : before) EXPECT_EQ(result.epoch, 1u);

  std::vector<EdgeInfluenceUpdate> updates(1);
  updates[0].edge = 1;
  updates[0].entries = {{1, 0.9}};
  const uint64_t epoch = service.ApplyUpdates(updates);
  EXPECT_EQ(epoch, 2u);
  EXPECT_EQ(service.current_epoch(), 2u);

  const auto after = service.ServeAll(queries);
  for (const ServedResult& result : after) EXPECT_EQ(result.epoch, 2u);
  // Every worker has rebound to epoch 2: epoch 1 must have reclaimed.
  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.snapshots_alive, 0u);
  EXPECT_EQ(stats.epochs_published, 2u);
  // Without a durability_dir the whole durability section stays zero.
  EXPECT_EQ(stats.wal_appends, 0u);
  EXPECT_EQ(stats.wal_fsyncs, 0u);
  EXPECT_EQ(stats.wal_append_failures, 0u);
  EXPECT_EQ(stats.checkpoints, 0u);
  EXPECT_EQ(stats.checkpoint_failures, 0u);
  EXPECT_EQ(stats.recovery_replayed_lsns, 0u);
}

TEST(PitexServiceTest, DurabilityRequiresUpdates) {
  const SocialNetwork n = MakeRunningExample();
  ServeOptions options;
  options.engine.method = Method::kIndexEst;
  options.num_threads = 1;
  options.durability_dir = "/tmp/pitex_service_test_wal";
  EXPECT_DEATH(PitexService(&n, options), "enable_updates");
}

TEST(PitexServiceTest, UpdatesRequireOptIn) {
  const SocialNetwork n = MakeRunningExample();
  ServeOptions options;
  options.engine.method = Method::kIndexEst;
  options.num_threads = 1;
  PitexService service(&n, options);
  std::vector<EdgeInfluenceUpdate> updates(1);
  updates[0].edge = 0;
  EXPECT_DEATH(service.ApplyUpdates(updates), "enable_updates");
}

TEST(PitexServiceTest, EmptyBatchIsFine) {
  const SocialNetwork n = MakeRunningExample();
  ServeOptions options;
  options.engine.method = Method::kLazy;
  PitexService service(&n, options);
  EXPECT_TRUE(service.ServeAll({}).empty());
}

TEST(PitexServiceTest, SkewedWorkloadBalancesAcrossWorkers) {
  // A mid-sized synthetic graph with power-law degrees: round-robin
  // assignment would pile the hub queries onto one residue class; the
  // stealing scheduler must spread the *work*. We assert the weaker,
  // deterministic property that every worker served something and the
  // batch completed correctly.
  DatasetSpec spec = LastfmSpec(0.5);
  spec.seed = 21;
  const SocialNetwork n = GenerateDataset(spec);
  ServeOptions options;
  options.engine.method = Method::kIndexEst;
  options.engine.index_theta_per_vertex = 2.0;
  options.num_threads = 4;
  options.cache_capacity = 0;
  PitexService service(&n, options);

  const auto users = SampleUserGroup(n.graph, UserGroup::kMid, 32, 2);
  std::vector<PitexQuery> queries;
  for (const VertexId user : users) queries.push_back({.user = user, .k = 3});
  const auto served = service.ServeAll(queries);
  ASSERT_EQ(served.size(), queries.size());
  for (const ServedResult& result : served) {
    EXPECT_EQ(result.result.tags.size(), 3u);
  }
  const ServiceStats stats = service.Stats();
  uint64_t sum = 0;
  for (const uint64_t count : stats.per_worker_served) sum += count;
  EXPECT_EQ(sum, queries.size());
}

}  // namespace
}  // namespace pitex
