#include "src/model/topic_model.h"

#include <gtest/gtest.h>

#include "running_example.h"

namespace pitex {
namespace {

TEST(TopicModelTest, DefaultsToUniformPriorAndZeroLikelihoods) {
  TopicModel m(4, 3);
  for (TopicId z = 0; z < 4; ++z) {
    EXPECT_DOUBLE_EQ(m.prior()[z], 0.25);
    for (TagId w = 0; w < 3; ++w) EXPECT_EQ(m.TagTopic(w, z), 0.0);
  }
}

TEST(TopicModelTest, EmptyTagSetPosteriorIsPrior) {
  TopicModel m(3, 2);
  const auto post = m.Posterior({});
  for (double p : post) EXPECT_NEAR(p, 1.0 / 3.0, 1e-12);
}

TEST(TopicModelTest, PosteriorSingleTag) {
  TopicModel m(2, 1);
  m.SetTagTopic(0, 0, 0.8);
  m.SetTagTopic(0, 1, 0.2);
  const TagId tags[] = {0};
  const auto post = m.Posterior(tags);
  EXPECT_NEAR(post[0], 0.8, 1e-12);
  EXPECT_NEAR(post[1], 0.2, 1e-12);
}

TEST(TopicModelTest, UnexpressibleTagSetGivesZeroPosterior) {
  TopicModel m(2, 2);
  m.SetTagTopic(0, 0, 1.0);  // w0 only in z0
  m.SetTagTopic(1, 1, 1.0);  // w1 only in z1
  const TagId tags[] = {0, 1};
  const auto post = m.Posterior(tags);
  EXPECT_EQ(post[0], 0.0);
  EXPECT_EQ(post[1], 0.0);
}

TEST(TopicModelTest, PosteriorSumsToOneWhenExpressible) {
  SocialNetwork network = MakeRunningExample();
  const TagId tags[] = {0, 2};
  const auto post = network.topics.Posterior(tags);
  double sum = 0.0;
  for (double p : post) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

// Fig. 2(b), right table: p(z | {w_a, w_b}) for every pair.
TEST(TopicModelTest, RunningExamplePosteriorTable) {
  SocialNetwork network = MakeRunningExample();
  const auto& topics = network.topics;
  struct Row {
    TagId a, b;
    double z1, z2, z3;
  };
  const Row rows[] = {
      {0, 1, 0.5, 0.5, 0.0},        // {w1, w2}
      {0, 2, 0.0, 1.0, 0.0},        // {w1, w3}
      {0, 3, 0.0, 1.0, 0.0},        // {w1, w4}
      {1, 2, 0.0, 1.0, 0.0},        // {w2, w3}
      {1, 3, 0.0, 1.0, 0.0},        // {w2, w4}
      {2, 3, 0.0, 4.0 / 13.0, 9.0 / 13.0},  // {w3, w4}: 0.33 / 0.67 rounded
  };
  for (const Row& row : rows) {
    const TagId tags[] = {row.a, row.b};
    const auto post = topics.Posterior(tags);
    EXPECT_NEAR(post[0], row.z1, 1e-9) << "pair " << row.a << "," << row.b;
    EXPECT_NEAR(post[1], row.z2, 1e-9) << "pair " << row.a << "," << row.b;
    EXPECT_NEAR(post[2], row.z3, 1e-9) << "pair " << row.a << "," << row.b;
  }
}

TEST(TopicModelTest, NonUniformPriorShiftsPosterior) {
  TopicModel m(2, 1);
  m.SetTagTopic(0, 0, 0.5);
  m.SetTagTopic(0, 1, 0.5);
  m.SetPrior({0.9, 0.1});
  const TagId tags[] = {0};
  const auto post = m.Posterior(tags);
  EXPECT_NEAR(post[0], 0.9, 1e-12);
  EXPECT_NEAR(post[1], 0.1, 1e-12);
}

TEST(TopicModelTest, DensityCountsNonZeros) {
  TopicModel m(2, 2);
  EXPECT_EQ(m.Density(), 0.0);
  m.SetTagTopic(0, 0, 0.5);
  EXPECT_NEAR(m.Density(), 0.25, 1e-12);
  m.SetTagTopic(1, 1, 0.5);
  EXPECT_NEAR(m.Density(), 0.5, 1e-12);
}

TEST(TopicModelTest, RunningExampleDensity) {
  SocialNetwork network = MakeRunningExample();
  // 8 of 12 entries are non-zero in Fig. 2(b).
  EXPECT_NEAR(network.topics.Density(), 8.0 / 12.0, 1e-12);
}

TEST(TopicModelDeathTest, RejectsBadPrior) {
  TopicModel m(2, 1);
  EXPECT_DEATH(m.SetPrior({0.5, 0.2}), "PITEX_CHECK");
}

TEST(TopicModelDeathTest, RejectsOutOfRangeProbability) {
  TopicModel m(2, 1);
  EXPECT_DEATH(m.SetTagTopic(0, 0, 1.5), "PITEX_CHECK");
}

}  // namespace
}  // namespace pitex
