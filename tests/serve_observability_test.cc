// End-to-end observability of the serving tier (docs/observability.md):
// a sampled query's exported trace must contain the full span chain
// (admission -> queue wait -> solve -> result, plus the cache probe in
// work-stealing mode), a publish's trace must cover the WAL append,
// fsync, freeze (with its nested pack) and the epoch swap, the
// staleness gauges must rise while publishes fail and return to zero
// once healed, and SnapshotMetrics() must agree with the legacy
// ServiceStats view it re-implements.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "running_example.h"
#include "src/obs/trace.h"
#include "src/serve/pitex_service.h"
#include "src/util/failpoint.h"

namespace pitex {
namespace {

namespace fs = std::filesystem;

using obs::SpanKind;
using obs::SpanRecord;
using obs::Tracer;

class ServeObservabilityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FailpointRegistry::Instance().DisableAll();
#if PITEX_TRACING_ENABLED
    Tracer::Instance().SetSampleEvery(0);
    Tracer::Instance().Clear();
#endif
  }
  void TearDown() override {
    FailpointRegistry::Instance().DisableAll();
#if PITEX_TRACING_ENABLED
    Tracer::Instance().SetSampleEvery(0);
    Tracer::Instance().Clear();
#endif
  }

  static ServeOptions BaseOptions(ScheduleMode mode) {
    ServeOptions options;
    options.engine.method = Method::kIndexEst;
    options.engine.index_theta_per_vertex = 150.0;
    options.engine.seed = 5;
    options.num_threads = 2;
    options.mode = mode;
    return options;
  }

  static EdgeInfluenceUpdate MakeUpdate(const SocialNetwork& n,
                                        uint64_t round) {
    EdgeInfluenceUpdate update;
    update.edge = static_cast<EdgeId>(round % n.num_edges());
    update.entries = {{static_cast<TopicId>(round % n.topics.num_topics()),
                       0.2 + 0.1 * static_cast<double>(round % 5)}};
    return update;
  }

  static const SpanRecord* FindSpan(const std::vector<SpanRecord>& spans,
                                    SpanKind kind) {
    for (const SpanRecord& span : spans) {
      if (span.kind == kind) return &span;
    }
    return nullptr;
  }
};

// The ISSUE acceptance criterion: in deterministic mode a sampled
// query's exported trace is the complete chain with non-negative,
// properly ordered durations. ServeAll (not Submit) because batch
// delivery decrements the countdown AFTER the result span is recorded,
// so every span is visible once the call returns.
TEST_F(ServeObservabilityTest, DeterministicQueryTraceHasFullSpanChain) {
#if !PITEX_TRACING_ENABLED
  GTEST_SKIP() << "tracing compiled out (-DPITEX_TRACING=OFF)";
#else
  const SocialNetwork n = MakeRunningExample();
  PitexService service(&n, BaseOptions(ScheduleMode::kDeterministic));
  service.Start();  // untraced: epoch-1 publish stays out of the buffers

  Tracer::Instance().SetSampleEvery(1);
  Tracer::Instance().Clear();

  const std::vector<PitexQuery> queries = {{.user = 0, .k = 2}};
  const std::vector<ServedResult> results = service.ServeAll(queries);
  ASSERT_EQ(results.size(), 1u);
  ASSERT_EQ(results[0].status, ServeStatus::kOk);
  ASSERT_NE(results[0].trace_id, 0u) << "every trace sampled at 1-in-1";

  const std::vector<SpanRecord> spans =
      Tracer::Instance().Collect(results[0].trace_id);
  // Deterministic mode has no cache, so the chain is exactly these four
  // (Collect orders by start time).
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(spans[0].kind, SpanKind::kAdmission);
  EXPECT_EQ(spans[1].kind, SpanKind::kQueueWait);
  EXPECT_EQ(spans[2].kind, SpanKind::kSolve);
  EXPECT_EQ(spans[3].kind, SpanKind::kResult);
  for (const SpanRecord& span : spans) {
    EXPECT_EQ(span.trace_id, results[0].trace_id);
    EXPECT_GE(span.end_ns, span.start_ns)
        << obs::SpanKindName(span.kind) << " has negative duration";
  }
  // Chain ordering: the solve starts after the queue wait began and the
  // result delivery starts no earlier than the solve ended.
  EXPECT_GE(spans[2].start_ns, spans[1].start_ns);
  EXPECT_GE(spans[3].start_ns, spans[2].end_ns);
#endif
}

TEST_F(ServeObservabilityTest, WorkStealingTraceIncludesCacheProbe) {
#if !PITEX_TRACING_ENABLED
  GTEST_SKIP() << "tracing compiled out (-DPITEX_TRACING=OFF)";
#else
  const SocialNetwork n = MakeRunningExample();
  PitexService service(&n, BaseOptions(ScheduleMode::kWorkStealing));
  service.Start();

  Tracer::Instance().SetSampleEvery(1);
  Tracer::Instance().Clear();

  const std::vector<PitexQuery> queries = {{.user = 1, .k = 2}};
  const std::vector<ServedResult> results = service.ServeAll(queries);
  ASSERT_EQ(results.size(), 1u);
  ASSERT_NE(results[0].trace_id, 0u);

  const std::vector<SpanRecord> spans =
      Tracer::Instance().Collect(results[0].trace_id);
  const SpanRecord* probe = FindSpan(spans, SpanKind::kCacheProbe);
  const SpanRecord* solve = FindSpan(spans, SpanKind::kSolve);
  ASSERT_NE(probe, nullptr);
  ASSERT_NE(solve, nullptr);
  // Cold cache: the probe missed, so the solve ran after it.
  EXPECT_GE(solve->start_ns, probe->end_ns);
#endif
}

// Second half of the acceptance criterion: one publish's trace covers
// freeze -> WAL sync -> swap (and the nested pack), all attributed to a
// single trace id through the thread-current trace.
TEST_F(ServeObservabilityTest, PublishTraceCoversWalFreezePackSwap) {
#if !PITEX_TRACING_ENABLED
  GTEST_SKIP() << "tracing compiled out (-DPITEX_TRACING=OFF)";
#else
  const SocialNetwork n = MakeRunningExample();
  const std::string dir =
      (fs::temp_directory_path() / "pitex_obs_publish_trace").string();
  fs::remove_all(dir);
  ServeOptions options = BaseOptions(ScheduleMode::kWorkStealing);
  options.enable_updates = true;
  options.durability_dir = dir;
  options.checkpoint_every = 1;  // this publish also checkpoints
  {
    PitexService service(&n, options);
    service.Start();

    Tracer::Instance().SetSampleEvery(1);
    Tracer::Instance().Clear();

    std::vector<EdgeInfluenceUpdate> updates{MakeUpdate(n, 0)};
    ASSERT_EQ(service.ApplyUpdates(updates), 2u);

    const std::vector<SpanRecord> spans = Tracer::Instance().CollectAll();
    const SpanRecord* publish = FindSpan(spans, SpanKind::kPublish);
    const SpanRecord* append = FindSpan(spans, SpanKind::kWalAppend);
    const SpanRecord* fsync = FindSpan(spans, SpanKind::kWalFsync);
    const SpanRecord* freeze = FindSpan(spans, SpanKind::kFreeze);
    const SpanRecord* pack = FindSpan(spans, SpanKind::kPack);
    const SpanRecord* swap = FindSpan(spans, SpanKind::kSwap);
    const SpanRecord* checkpoint = FindSpan(spans, SpanKind::kCheckpoint);
    ASSERT_NE(publish, nullptr);
    ASSERT_NE(append, nullptr);
    ASSERT_NE(fsync, nullptr);
    ASSERT_NE(freeze, nullptr);
    ASSERT_NE(pack, nullptr);
    ASSERT_NE(swap, nullptr);
    ASSERT_NE(checkpoint, nullptr);
    for (const SpanRecord* span : {append, fsync, freeze, pack, swap,
                                   checkpoint}) {
      EXPECT_EQ(span->trace_id, publish->trace_id)
          << obs::SpanKindName(span->kind);
      EXPECT_GE(span->end_ns, span->start_ns);
      // Every stage nests inside the whole-publish span.
      EXPECT_GE(span->start_ns, publish->start_ns);
      EXPECT_LE(span->end_ns, publish->end_ns);
    }
    // Pipeline order: durability first (append then the fsync commit
    // point), then the freeze (pack nested inside), then the swap.
    EXPECT_GE(fsync->start_ns, append->end_ns);
    EXPECT_GE(freeze->start_ns, fsync->end_ns);
    EXPECT_GE(pack->start_ns, freeze->start_ns);
    EXPECT_LE(pack->end_ns, freeze->end_ns);
    EXPECT_GE(swap->start_ns, freeze->end_ns);
  }
  fs::remove_all(dir);
#endif
}

TEST_F(ServeObservabilityTest, StalenessGaugesRiseWhilePublishesFail) {
#if !PITEX_FAILPOINTS_ENABLED
  GTEST_SKIP() << "fail points compiled out (-DPITEX_FAILPOINTS=OFF)";
#else
  const SocialNetwork n = MakeRunningExample();
  const std::string dir =
      (fs::temp_directory_path() / "pitex_obs_staleness").string();
  fs::remove_all(dir);
  ServeOptions options = BaseOptions(ScheduleMode::kWorkStealing);
  options.enable_updates = true;
  options.durability_dir = dir;
  options.publish_max_attempts = 2;
  options.publish_backoff_initial_ms = 0.1;
  options.publish_backoff_max_ms = 1.0;
  {
    PitexService service(&n, options);
    service.Start();
    {
      const obs::MetricsSnapshot snap = service.SnapshotMetrics();
      EXPECT_EQ(snap.GaugeValue("pitex_staleness_batches"), 0);
      EXPECT_EQ(snap.GaugeValue("pitex_staleness_lsns"), 0);
    }

    FailpointConfig config;
    config.mode = FailpointMode::kError;
    FailpointRegistry::Instance().Enable("serve/publish_freeze", config);
    std::vector<EdgeInfluenceUpdate> first{MakeUpdate(n, 0)};
    ApplyUpdatesOutcome outcome;
    ASSERT_EQ(service.ApplyUpdates(first, &outcome), 0u);
    ASSERT_EQ(outcome, ApplyUpdatesOutcome::kPublishFailed);

    {
      const obs::MetricsSnapshot snap = service.SnapshotMetrics();
      // The batch is applied and durable but readers still serve epoch
      // 1: one batch (and its LSN) of staleness.
      EXPECT_EQ(snap.GaugeValue("pitex_staleness_batches"), 1);
      EXPECT_GT(snap.GaugeValue("pitex_staleness_lsns"), 0);
      EXPECT_GT(snap.GaugeValue("pitex_durable_lsn"),
                snap.GaugeValue("pitex_published_lsn"));
      EXPECT_EQ(snap.CounterValue("pitex_publish_failures_total"), 1u);
      EXPECT_EQ(snap.CounterValue("pitex_publish_retries_total"), 2u);
    }
    // The flight recorder saw the retries and the final failure.
    bool saw_retry = false, saw_failure = false;
    for (const obs::Event& event : service.journal().Snapshot()) {
      saw_retry |= event.kind == obs::EventKind::kPublishRetry;
      saw_failure |= event.kind == obs::EventKind::kPublishFailure;
    }
    EXPECT_TRUE(saw_retry);
    EXPECT_TRUE(saw_failure);

    // Healing the fault folds the staged batch in: staleness back to 0.
    FailpointRegistry::Instance().DisableAll();
    std::vector<EdgeInfluenceUpdate> second{MakeUpdate(n, 1)};
    ASSERT_EQ(service.ApplyUpdates(second), 2u);
    {
      const obs::MetricsSnapshot snap = service.SnapshotMetrics();
      EXPECT_EQ(snap.GaugeValue("pitex_staleness_batches"), 0);
      EXPECT_EQ(snap.GaugeValue("pitex_staleness_lsns"), 0);
      EXPECT_EQ(snap.GaugeValue("pitex_durable_lsn"),
                snap.GaugeValue("pitex_published_lsn"));
    }
  }
  fs::remove_all(dir);
#endif
}

TEST_F(ServeObservabilityTest, SnapshotMetricsAgreesWithServiceStats) {
  const SocialNetwork n = MakeRunningExample();
  ServeOptions options = BaseOptions(ScheduleMode::kWorkStealing);
  options.enable_updates = true;
  PitexService service(&n, options);
  service.Start();

  std::vector<PitexQuery> queries;
  for (int i = 0; i < 20; ++i) {
    queries.push_back({.user = static_cast<VertexId>(i % n.num_vertices()),
                       .k = 2});
  }
  (void)service.ServeAll(queries);
  (void)service.ServeAll(queries);  // repeats hit the cache
  std::vector<EdgeInfluenceUpdate> updates{MakeUpdate(n, 0)};
  ASSERT_EQ(service.ApplyUpdates(updates), 2u);

  const ServiceStats stats = service.Stats();
  const obs::MetricsSnapshot snap = service.SnapshotMetrics();

  // The legacy view and the registry export are two reads of the same
  // counters; the service is quiescent here so they agree exactly.
  EXPECT_EQ(snap.CounterValue("pitex_queries_submitted_total"), 40u);
  EXPECT_EQ(snap.CounterValue("pitex_queries_admitted_total"), 40u);
  EXPECT_EQ(snap.CounterValue("pitex_cache_hits_total"), stats.cache_hits);
  EXPECT_EQ(snap.CounterValue("pitex_steals_total"), stats.steals);
  EXPECT_EQ(snap.CounterValue("pitex_queries_degraded_total"),
            stats.degraded);
  EXPECT_EQ(snap.CounterValue("pitex_queries_shed_queue_full_total"),
            stats.shed_queue_full);
  EXPECT_EQ(snap.GaugeValue("pitex_cache_entries"),
            static_cast<int64_t>(stats.cache_entries));
  EXPECT_EQ(snap.GaugeValue("pitex_current_epoch"),
            static_cast<int64_t>(stats.current_epoch));
  EXPECT_EQ(snap.GaugeValue("pitex_epochs_published"),
            static_cast<int64_t>(stats.epochs_published));

  // Conservation (no admission controller configured, no budgets:
  // nothing sheds, degrades, or expires): every submitted query was
  // admitted and resolved ok.
  EXPECT_EQ(snap.CounterValue("pitex_queries_ok_total"), 40u);
  EXPECT_EQ(snap.CounterValue("pitex_queries_deadline_expired_total"), 0u);

  // Cache conservation from one collector pass: insertions are split
  // exactly between resident entries and evictions.
  EXPECT_EQ(snap.GaugeValue("pitex_cache_insertions"),
            snap.GaugeValue("pitex_cache_entries") +
                snap.GaugeValue("pitex_cache_evictions"));

  // Exports render every registered metric.
  const std::string json = snap.ToJson();
  EXPECT_NE(json.find("pitex_query_sojourn_seconds"), std::string::npos);
  const std::string prom = snap.ToPrometheus();
  EXPECT_NE(prom.find("# TYPE pitex_query_sojourn_seconds histogram"),
            std::string::npos);
  EXPECT_NE(prom.find("pitex_queries_ok_total 40"), std::string::npos);
}

TEST_F(ServeObservabilityTest, JournalRecordsLifecycleEvents) {
  const SocialNetwork n = MakeRunningExample();
  ServeOptions options = BaseOptions(ScheduleMode::kWorkStealing);
  options.enable_updates = true;
  PitexService service(&n, options);
  service.Start();
  (void)service.ServeAll(std::vector<PitexQuery>{{.user = 0, .k = 2}});
  std::vector<EdgeInfluenceUpdate> updates{MakeUpdate(n, 0)};
  ASSERT_EQ(service.ApplyUpdates(updates), 2u);

  size_t swaps = 0, rebinds = 0;
  for (const obs::Event& event : service.journal().Snapshot()) {
    if (event.kind == obs::EventKind::kEpochSwap) ++swaps;
    if (event.kind == obs::EventKind::kWorkerRebind) ++rebinds;
  }
  // One swap from Start()'s initial publish, one from ApplyUpdates.
  EXPECT_EQ(swaps, 2u);
  // At least the worker that served the query bound an engine.
  EXPECT_GE(rebinds, 1u);
  EXPECT_GE(service.journal().total_recorded(), 3u);
}

// Two services in one process never share registry counts (the
// per-service-instance design the conservation invariants rely on).
TEST_F(ServeObservabilityTest, ServicesDoNotShareMetricCounts) {
  const SocialNetwork n = MakeRunningExample();
  PitexService a(&n, BaseOptions(ScheduleMode::kWorkStealing));
  PitexService b(&n, BaseOptions(ScheduleMode::kWorkStealing));
  a.Start();
  b.Start();
  (void)a.ServeAll(std::vector<PitexQuery>{{.user = 0, .k = 2},
                                           {.user = 1, .k = 2}});
  EXPECT_EQ(a.SnapshotMetrics().CounterValue("pitex_queries_submitted_total"),
            2u);
  EXPECT_EQ(b.SnapshotMetrics().CounterValue("pitex_queries_submitted_total"),
            0u);
}

}  // namespace
}  // namespace pitex
