// Tests for BatchEngine (src/core/batch_engine.h): batch answers must
// agree with sequential single-engine answers, stay deterministic for a
// fixed thread count, and support every estimation method over a shared
// or replicated index.

#include "src/core/batch_engine.h"

#include <gtest/gtest.h>

#include <vector>

#include "running_example.h"
#include "src/datasets/synthetic.h"

namespace pitex {
namespace {

std::vector<PitexQuery> MakeQueries(const SocialNetwork& n, size_t count) {
  std::vector<PitexQuery> queries;
  queries.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    queries.push_back(
        {.user = static_cast<VertexId>(i % n.num_vertices()), .k = 2});
  }
  return queries;
}

TEST(BatchEngineTest, MatchesSequentialEngineOnIndexEst) {
  const SocialNetwork n = MakeRunningExample();
  EngineOptions options;
  options.method = Method::kIndexEst;
  options.index_theta_per_vertex = 400.0;  // dense: estimates become stable
  options.seed = 3;

  // Sequential reference.
  PitexEngine reference(&n, options);
  reference.BuildIndex();

  BatchOptions batch_options;
  batch_options.engine = options;
  batch_options.num_threads = 4;
  BatchEngine batch(&n, batch_options);

  const auto queries = MakeQueries(n, 14);
  const auto results = batch.ExploreAll(queries);
  ASSERT_EQ(results.size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    const PitexResult expected = reference.Explore(queries[i]);
    // IndexEst is deterministic given the index; the shared index is
    // built with the same seed, so tag sets and influences must agree.
    EXPECT_EQ(results[i].tags, expected.tags) << "query " << i;
    EXPECT_DOUBLE_EQ(results[i].influence, expected.influence);
  }
}

TEST(BatchEngineTest, DeterministicAcrossRunsForFixedThreads) {
  const SocialNetwork n = MakeRunningExample();
  BatchOptions options;
  options.engine.method = Method::kLazy;
  options.engine.seed = 9;
  options.num_threads = 3;

  const auto queries = MakeQueries(n, 12);
  BatchEngine first(&n, options);
  BatchEngine second(&n, options);
  const auto a = first.ExploreAll(queries);
  const auto b = second.ExploreAll(queries);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].tags, b[i].tags) << "query " << i;
    EXPECT_DOUBLE_EQ(a[i].influence, b[i].influence);
  }
}

class BatchEngineMethodTest : public ::testing::TestWithParam<Method> {};

TEST_P(BatchEngineMethodTest, AllMethodsAnswerBatches) {
  const SocialNetwork n = MakeRunningExample();
  BatchOptions options;
  options.engine.method = GetParam();
  options.engine.index_theta_per_vertex = 150.0;
  options.engine.seed = 7;
  options.num_threads = 4;

  BatchEngine batch(&n, options);
  const auto queries = MakeQueries(n, 10);
  const auto results = batch.ExploreAll(queries);
  ASSERT_EQ(results.size(), queries.size());
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].tags.size(), queries[i].k) << "query " << i;
    EXPECT_GE(results[i].influence, 1.0) << "query " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllMethods, BatchEngineMethodTest,
                         ::testing::Values(Method::kMc, Method::kRr,
                                           Method::kLazy, Method::kTim,
                                           Method::kIndexEst,
                                           Method::kIndexEstPlus,
                                           Method::kDelayMat, Method::kLt),
                         [](const auto& param_info) {
                           std::string name = MethodName(param_info.param);
                           for (char& c : name) {
                             if (c == '+') c = 'P';
                           }
                           return name;
                         });

TEST(BatchEngineTest, SingleThreadDegeneratesToSequential) {
  const SocialNetwork n = MakeRunningExample();
  BatchOptions options;
  options.engine.method = Method::kLazy;
  options.engine.seed = 5;
  options.num_threads = 1;

  PitexEngine reference(&n, options.engine);
  BatchEngine batch(&n, options);
  const auto queries = MakeQueries(n, 6);
  const auto results = batch.ExploreAll(queries);
  for (size_t i = 0; i < queries.size(); ++i) {
    const PitexResult expected = reference.Explore(queries[i]);
    EXPECT_EQ(results[i].tags, expected.tags) << "query " << i;
    EXPECT_DOUBLE_EQ(results[i].influence, expected.influence);
  }
}

TEST(BatchEngineTest, SharedIndexReportedForIndexMethods) {
  const SocialNetwork n = MakeRunningExample();
  BatchOptions options;
  options.engine.method = Method::kIndexEst;
  options.num_threads = 2;
  BatchEngine batch(&n, options);
  batch.Prepare();
  EXPECT_GT(batch.SharedIndexSizeBytes(), 0u);

  BatchOptions online;
  online.engine.method = Method::kLazy;
  BatchEngine online_batch(&n, online);
  online_batch.Prepare();
  EXPECT_EQ(online_batch.SharedIndexSizeBytes(), 0u);
}

TEST(BatchEngineTest, LargeBatchOnSyntheticDataset) {
  DatasetSpec spec = LastfmSpec(0.5);
  spec.seed = 21;
  const SocialNetwork n = GenerateDataset(spec);
  BatchOptions options;
  options.engine.method = Method::kIndexEstPlus;
  options.engine.index_theta_per_vertex = 2.0;
  options.num_threads = 4;

  BatchEngine batch(&n, options);
  std::vector<PitexQuery> queries;
  const auto users =
      SampleUserGroup(n.graph, UserGroup::kMid, 40, /*seed=*/2);
  for (const VertexId u : users) queries.push_back({.user = u, .k = 3});
  const auto results = batch.ExploreAll(queries);
  ASSERT_EQ(results.size(), queries.size());
  for (const PitexResult& r : results) {
    EXPECT_EQ(r.tags.size(), 3u);
    EXPECT_GE(r.influence, 1.0);
  }
  EXPECT_GT(batch.last_batch_seconds(), 0.0);
}

TEST(BatchEngineTest, PerWorkerStatsAccountForEveryQuery) {
  const SocialNetwork n = MakeRunningExample();
  BatchOptions options;
  options.engine.method = Method::kLazy;
  options.engine.seed = 4;
  options.num_threads = 3;
  BatchEngine batch(&n, options);

  EXPECT_TRUE(batch.last_worker_stats().empty());  // nothing run yet
  const auto queries = MakeQueries(n, 11);
  (void)batch.ExploreAll(queries);

  const auto& stats = batch.last_worker_stats();
  ASSERT_EQ(stats.size(), options.num_threads);
  uint64_t total = 0;
  for (size_t w = 0; w < stats.size(); ++w) {
    // Round-robin: worker w gets ceil((11 - w) / 3) queries.
    const uint64_t expected = (queries.size() - w + 2) / 3;
    EXPECT_EQ(stats[w].queries, expected) << "worker " << w;
    EXPECT_GE(stats[w].seconds, 0.0);
    EXPECT_LE(stats[w].seconds, batch.last_batch_seconds() + 0.5);
    total += stats[w].queries;
  }
  EXPECT_EQ(total, queries.size());

  // Stats are per-call, not cumulative.
  (void)batch.ExploreAll(MakeQueries(n, 3));
  ASSERT_EQ(batch.last_worker_stats().size(), options.num_threads);
  EXPECT_EQ(batch.last_worker_stats()[0].queries, 1u);
}

TEST(BatchEngineTest, EmptyBatchIsFine) {
  const SocialNetwork n = MakeRunningExample();
  BatchOptions options;
  options.engine.method = Method::kLazy;
  BatchEngine batch(&n, options);
  const auto results = batch.ExploreAll({});
  EXPECT_TRUE(results.empty());
}

}  // namespace
}  // namespace pitex
