// Tests for the general triggering model (src/sampling/triggering_sampler.h):
// the IC instantiation must agree with the dedicated IC machinery (exact
// oracle, McSampler), the LT instantiation with LtSampler, and on
// in-trees the two models must coincide (every vertex has one in-edge, so
// "independent coin" and "pick one in-neighbor" are the same draw).

#include "src/sampling/triggering_sampler.h"

#include <gtest/gtest.h>

#include <cmath>

#include "running_example.h"
#include "src/datasets/synthetic.h"
#include "src/graph/generators.h"
#include "src/sampling/exact.h"
#include "src/sampling/lt_sampler.h"
#include "src/sampling/mc_sampler.h"

namespace pitex {
namespace {

// A fixed activation probability for every edge, for tests that do not
// need the tag machinery.
class ConstProbs final : public EdgeProbFn {
 public:
  explicit ConstProbs(double p) : p_(p) {}
  double Prob(EdgeId) const override { return p_; }

 private:
  double p_;
};

SampleSizePolicy TightPolicy() {
  SampleSizePolicy policy;
  policy.eps = 0.1;
  policy.min_samples = 20000;
  policy.max_samples = 60000;
  return policy;
}

// Dense EdgeId-indexed table for direct SampleTriggeringSet calls (the
// sampler-provided table in production).
std::vector<double> DenseProbs(const Graph& graph, const EdgeProbFn& probs) {
  std::vector<double> table(graph.num_edges());
  for (EdgeId e = 0; e < graph.num_edges(); ++e) table[e] = probs.Prob(e);
  return table;
}

TEST(TriggeringDistributionTest, IcFrequenciesMatchEdgeProbs) {
  GraphBuilder builder(3);
  builder.AddEdge(0, 2);
  builder.AddEdge(1, 2);
  const Graph graph = builder.Build();
  const ConstProbs probs(0.3);

  Rng rng(7);
  IcTriggering ic;
  const std::vector<double> table = DenseProbs(graph, probs);
  int hits[2] = {0, 0};
  int both = 0;
  const int kTrials = 40000;
  std::vector<EdgeId> live;
  for (int i = 0; i < kTrials; ++i) {
    live.clear();
    ic.SampleTriggeringSet(graph, 2, table, &rng, &live);
    for (const EdgeId e : live) ++hits[e];
    if (live.size() == 2) ++both;
  }
  EXPECT_NEAR(hits[0] / static_cast<double>(kTrials), 0.3, 0.02);
  EXPECT_NEAR(hits[1] / static_cast<double>(kTrials), 0.3, 0.02);
  // Independence: both live with probability p^2.
  EXPECT_NEAR(both / static_cast<double>(kTrials), 0.09, 0.02);
}

TEST(TriggeringDistributionTest, LtPicksAtMostOneEdge) {
  GraphBuilder builder(4);
  builder.AddEdge(0, 3);
  builder.AddEdge(1, 3);
  builder.AddEdge(2, 3);
  const Graph graph = builder.Build();
  const ConstProbs probs(0.25);

  Rng rng(9);
  LtTriggering lt;
  const std::vector<double> table = DenseProbs(graph, probs);
  int hits[3] = {0, 0, 0};
  int empty = 0;
  const int kTrials = 40000;
  std::vector<EdgeId> live;
  for (int i = 0; i < kTrials; ++i) {
    live.clear();
    lt.SampleTriggeringSet(graph, 3, table, &rng, &live);
    ASSERT_LE(live.size(), 1u);
    if (live.empty()) {
      ++empty;
    } else {
      ++hits[live[0]];
    }
  }
  // Each edge selected with probability 0.25; empty with the leftover.
  for (int e = 0; e < 3; ++e) {
    EXPECT_NEAR(hits[e] / static_cast<double>(kTrials), 0.25, 0.02);
  }
  EXPECT_NEAR(empty / static_cast<double>(kTrials), 0.25, 0.02);
}

TEST(TriggeringDistributionTest, LtRenormalizesOverflowingWeights) {
  GraphBuilder builder(3);
  builder.AddEdge(0, 2);
  builder.AddEdge(1, 2);
  const Graph graph = builder.Build();
  const ConstProbs probs(0.8);  // in-weights sum to 1.6

  Rng rng(11);
  LtTriggering lt;
  const std::vector<double> table = DenseProbs(graph, probs);
  int selections = 0;
  const int kTrials = 20000;
  std::vector<EdgeId> live;
  for (int i = 0; i < kTrials; ++i) {
    live.clear();
    lt.SampleTriggeringSet(graph, 2, table, &rng, &live);
    ASSERT_LE(live.size(), 1u);
    selections += !live.empty();
  }
  // Renormalized: somebody is always selected.
  EXPECT_EQ(selections, kTrials);
}

TEST(TriggeringSamplerTest, SingleEdgeSpreadIsOnePlusP) {
  GraphBuilder builder(2);
  builder.AddEdge(0, 1);
  const Graph graph = builder.Build();
  const ConstProbs probs(0.4);

  const IcTriggering ic;
  const LtTriggering lt;
  TriggeringSampler ic_sampler(graph, &ic, TightPolicy(), 3);
  TriggeringSampler lt_sampler(graph, &lt, TightPolicy(), 4);
  EXPECT_NEAR(ic_sampler.EstimateInfluence(0, probs).influence, 1.4, 0.02);
  EXPECT_NEAR(lt_sampler.EstimateInfluence(0, probs).influence, 1.4, 0.02);
}

TEST(TriggeringSamplerTest, DeterministicChainFullyActivates) {
  GraphBuilder builder(5);
  for (VertexId v = 0; v + 1 < 5; ++v) builder.AddEdge(v, v + 1);
  const Graph graph = builder.Build();
  const ConstProbs probs(1.0);

  const IcTriggering ic;
  const LtTriggering lt;
  TriggeringSampler ic_sampler(graph, &ic, TightPolicy(), 3);
  TriggeringSampler lt_sampler(graph, &lt, TightPolicy(), 4);
  EXPECT_DOUBLE_EQ(ic_sampler.EstimateInfluence(0, probs).influence, 5.0);
  EXPECT_DOUBLE_EQ(lt_sampler.EstimateInfluence(0, probs).influence, 5.0);
}

TEST(TriggeringSamplerTest, IcConvergenceDiamondGraph) {
  // Diamond: 0 -> {1,2} -> 3. Under IC with p everywhere:
  //   E[I] = 1 + 2p + P(3 active), P(3) = p*(1-(1-p)^2) for each parent
  //   path... computed exactly via the oracle instead.
  GraphBuilder builder(4);
  builder.AddEdge(0, 1);
  builder.AddEdge(0, 2);
  builder.AddEdge(1, 3);
  builder.AddEdge(2, 3);
  const Graph graph = builder.Build();
  const ConstProbs probs(0.5);
  const double exact = ExactInfluence(graph, probs, 0);

  const IcTriggering ic;
  TriggeringSampler sampler(graph, &ic, TightPolicy(), 17);
  EXPECT_NEAR(sampler.EstimateInfluence(0, probs).influence, exact, 0.05);
}

TEST(TriggeringSamplerTest, LtDiamondDiffersFromIcAsTheoryPredicts) {
  // In the diamond with p = 0.5 the models disagree on vertex 3:
  //   IC: both parent edges flip coins; LT: vertex 3 picks one parent.
  // LT: P(3) = 0.5*P(1) + 0.5*P(2) = 0.5 * 0.5 + 0.5 * 0.5 = 0.5.
  // IC: P(3) = 1 - (1 - 0.5*0.5)^2 = 0.4375.
  GraphBuilder builder(4);
  builder.AddEdge(0, 1);
  builder.AddEdge(0, 2);
  builder.AddEdge(1, 3);
  builder.AddEdge(2, 3);
  const Graph graph = builder.Build();
  const ConstProbs probs(0.5);

  const LtTriggering lt;
  TriggeringSampler sampler(graph, &lt, TightPolicy(), 21);
  EXPECT_NEAR(sampler.EstimateInfluence(0, probs).influence, 1.0 + 1.0 + 0.5,
              0.04);
}

TEST(TriggeringSamplerTest, IcInstantiationMatchesMcSampler) {
  const SocialNetwork n = MakeRunningExample();
  const TagId tags[] = {2, 3};
  const auto post = n.topics.Posterior(tags);
  const PosteriorProbs probs(n.influence, post);

  const IcTriggering ic;
  TriggeringSampler triggering(n.graph, &ic, TightPolicy(), 5);
  McSampler mc(n.graph, TightPolicy(), 6);
  const double trig = triggering.EstimateInfluence(0, probs).influence;
  const double plain = mc.EstimateInfluence(0, probs).influence;
  EXPECT_NEAR(trig, plain, 0.05 * plain);
}

TEST(TriggeringSamplerTest, LtInstantiationMatchesLtSampler) {
  // Keep per-vertex in-weight sums <= 1 so threshold-LT and
  // triggering-LT semantics provably coincide.
  const SocialNetwork n = MakeRunningExample();
  const ConstProbs probs(0.2);

  const LtTriggering lt;
  TriggeringSampler triggering(n.graph, &lt, TightPolicy(), 5);
  LtSampler direct(n.graph, TightPolicy(), 6);
  const double trig = triggering.EstimateInfluence(0, probs).influence;
  const double plain = direct.EstimateInfluence(0, probs).influence;
  EXPECT_NEAR(trig, plain, 0.05 * plain);
}

TEST(TriggeringSamplerTest, ModelsCoincideOnInTrees) {
  // On a tree every vertex has exactly one in-edge, so IC and LT define
  // the same live-edge distribution.
  GraphBuilder builder(7);
  builder.AddEdge(0, 1);
  builder.AddEdge(0, 2);
  builder.AddEdge(1, 3);
  builder.AddEdge(1, 4);
  builder.AddEdge(2, 5);
  builder.AddEdge(2, 6);
  const Graph graph = builder.Build();
  const ConstProbs probs(0.6);

  const IcTriggering ic;
  const LtTriggering lt;
  TriggeringSampler ic_sampler(graph, &ic, TightPolicy(), 8);
  TriggeringSampler lt_sampler(graph, &lt, TightPolicy(), 9);
  const double a = ic_sampler.EstimateInfluence(0, probs).influence;
  const double b = lt_sampler.EstimateInfluence(0, probs).influence;
  EXPECT_NEAR(a, b, 0.04 * a);
  // Exact tree spread: 1 + 2*0.6 + 4*0.36.
  EXPECT_NEAR(a, 1.0 + 1.2 + 1.44, 0.06);
}

TEST(TriggeringSamplerTest, CountsEdgeProbes) {
  const SocialNetwork n = MakeRunningExample();
  const TagId tags[] = {2, 3};
  const auto post = n.topics.Posterior(tags);
  const PosteriorProbs probs(n.influence, post);

  const IcTriggering ic;
  SampleSizePolicy policy;
  policy.min_samples = 8;
  policy.max_samples = 8;
  TriggeringSampler sampler(n.graph, &ic, policy, 5);
  const Estimate est = sampler.EstimateInfluence(0, probs);
  EXPECT_GT(est.edges_visited, 0u);
  EXPECT_EQ(est.samples, 8u);
}

TEST(TriggeringSamplerTest, IsolatedUserHasUnitSpread) {
  GraphBuilder builder(3);
  builder.AddEdge(1, 2);
  const Graph graph = builder.Build();
  const ConstProbs probs(0.9);
  const IcTriggering ic;
  TriggeringSampler sampler(graph, &ic, TightPolicy(), 2);
  EXPECT_DOUBLE_EQ(sampler.EstimateInfluence(0, probs).influence, 1.0);
}

}  // namespace
}  // namespace pitex
