// Chaos suite for the serving subsystem: queries and updates racing
// while fail points (src/util/failpoint.h) fire in the publish path,
// the cache shard locks, the pool dispatch, and the index-load path.
// Nothing may crash; epochs stay monotone; answers served to completion
// stay exactly correct for their epoch; publish failures degrade to
// "keep serving the previous epoch" and fold staged repairs into the
// next successful publish. This test is a ThreadSanitizer target (CI
// runs it with failpoints armed; see .github/workflows/ci.yml).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "running_example.h"
#include "src/serve/pitex_service.h"
#include "src/util/failpoint.h"

namespace pitex {
namespace {

// Every test must leave the process-wide registry clean: armed points
// outlive the test that armed them otherwise.
class ServeUnderFaultsTest : public ::testing::Test {
 protected:
  void SetUp() override {
#if !PITEX_FAILPOINTS_ENABLED
    GTEST_SKIP() << "fail points compiled out (-DPITEX_FAILPOINTS=OFF)";
#endif
    FailpointRegistry::Instance().DisableAll();
  }
  void TearDown() override { FailpointRegistry::Instance().DisableAll(); }

  static ServeOptions BaseOptions() {
    ServeOptions options;
    options.engine.method = Method::kIndexEst;
    options.engine.index_theta_per_vertex = 150.0;
    options.engine.seed = 5;
    options.num_threads = 2;
    options.mode = ScheduleMode::kWorkStealing;
    options.enable_updates = true;
    options.publish_threads = 2;
    // Keep injected-failure retries fast; the policy, not the wall
    // clock, is under test.
    options.publish_backoff_initial_ms = 0.1;
    options.publish_backoff_max_ms = 1.0;
    return options;
  }

  static EdgeInfluenceUpdate MakeUpdate(const SocialNetwork& n,
                                        size_t round) {
    EdgeInfluenceUpdate update;
    update.edge = static_cast<EdgeId>(round % n.num_edges());
    update.entries = {{static_cast<TopicId>(round % n.topics.num_topics()),
                       0.2 + 0.1 * static_cast<double>(round % 5)}};
    return update;
  }

  /// The metric conservation invariants (docs/observability.md) that
  /// must hold in any drained state, no matter which faults fired:
  /// every submitted query was admitted or shed, every admitted query
  /// resolved exactly one way, and every cache insertion is either
  /// still resident or was evicted.
  static void ExpectConservation(PitexService& service) {
    const obs::MetricsSnapshot snap = service.SnapshotMetrics();
    EXPECT_EQ(snap.CounterValue("pitex_queries_submitted_total"),
              snap.CounterValue("pitex_queries_admitted_total") +
                  snap.CounterValue("pitex_queries_shed_queue_full_total") +
                  snap.CounterValue("pitex_queries_shed_rate_limited_total"));
    EXPECT_EQ(snap.CounterValue("pitex_queries_admitted_total"),
              snap.CounterValue("pitex_queries_ok_total") +
                  snap.CounterValue("pitex_queries_degraded_total") +
                  snap.CounterValue("pitex_queries_deadline_expired_total"));
    // Cache gauges come from one collector pass over the shards, so the
    // identity holds even though faults dropped arbitrary inserts.
    EXPECT_EQ(snap.GaugeValue("pitex_cache_insertions"),
              snap.GaugeValue("pitex_cache_entries") +
                  snap.GaugeValue("pitex_cache_evictions"));
    EXPECT_EQ(snap.GaugeValue("pitex_admission_in_flight"), 0);
  }
};

TEST_F(ServeUnderFaultsTest, PublishRetriesThroughInjectedFailures) {
  const SocialNetwork n = MakeRunningExample();
  PitexService service(&n, BaseOptions());
  service.Start();  // epoch 1 publishes before any fault is armed

  FailpointConfig config;
  config.mode = FailpointMode::kError;
  config.fires = 2;  // first two freeze attempts fail, the third works
  FailpointRegistry::Instance().Enable("serve/publish_freeze", config);

  std::vector<EdgeInfluenceUpdate> updates{MakeUpdate(n, 0)};
  EXPECT_EQ(service.ApplyUpdates(updates), 2u);
  EXPECT_EQ(
      FailpointRegistry::Instance().FireCount("serve/publish_freeze"), 2u);

  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.publish_retries, 2u);
  EXPECT_EQ(stats.publish_failures, 0u);
  EXPECT_EQ(stats.epochs_published, 2u);
  EXPECT_FALSE(stats.publish_in_flight);
  EXPECT_FALSE(stats.publish_stuck);

  // The published epoch serves.
  const ServedResult result = service.Submit({.user = 0, .k = 2}).get();
  EXPECT_EQ(result.epoch, 2u);
  EXPECT_EQ(result.status, ServeStatus::kOk);
  EXPECT_EQ(result.result.tags.size(), 2u);
}

TEST_F(ServeUnderFaultsTest, ExhaustedRetriesFoldIntoNextPublish) {
  const SocialNetwork n = MakeRunningExample();
  ServeOptions options = BaseOptions();
  options.publish_max_attempts = 2;
  PitexService service(&n, options);
  service.Start();

  // Arm an unbounded freeze failure: this publish cannot succeed.
  FailpointConfig config;
  config.mode = FailpointMode::kError;
  FailpointRegistry::Instance().Enable("serve/publish_freeze", config);

  std::vector<EdgeInfluenceUpdate> first{MakeUpdate(n, 0)};
  ApplyUpdatesOutcome outcome;
  EXPECT_EQ(service.ApplyUpdates(first, &outcome), 0u);  // gave up gracefully
  // The outcome distinguishes this from a WAL rejection: the batch IS
  // applied to the master, so the caller must NOT retry it.
  EXPECT_EQ(outcome, ApplyUpdatesOutcome::kPublishFailed);
  EXPECT_EQ(service.current_epoch(), 1u);      // readers keep epoch 1
  {
    const ServiceStats stats = service.Stats();
    EXPECT_EQ(stats.publish_failures, 1u);
    EXPECT_EQ(stats.publish_retries, 2u);  // both attempts failed
    EXPECT_EQ(stats.epochs_published, 1u);
  }
  // Serving is unaffected by the failed publish.
  EXPECT_EQ(service.Submit({.user = 1, .k = 2}).get().epoch, 1u);

  // Heal the fault: the next publish must fold the staged repair in
  // along with its own update.
  FailpointRegistry::Instance().DisableAll();
  std::vector<EdgeInfluenceUpdate> second{MakeUpdate(n, 1)};
  EXPECT_EQ(service.ApplyUpdates(second), 2u);

  // Reference: the same two updates applied without faults, published
  // one epoch each. Its final master saw the identical repair sequence,
  // so the frozen snapshots must answer identically.
  PitexService reference(&n, BaseOptions());
  reference.Start();
  EXPECT_EQ(reference.ApplyUpdates(first), 2u);
  EXPECT_EQ(reference.ApplyUpdates(second), 3u);

  for (VertexId user = 0; user < n.num_vertices(); ++user) {
    const PitexQuery query = {.user = user, .k = 2};
    const ServedResult healed = service.Submit(query).get();
    const ServedResult expected = reference.Submit(query).get();
    ASSERT_EQ(healed.status, ServeStatus::kOk);
    EXPECT_EQ(healed.result.tags, expected.result.tags) << "user " << user;
    EXPECT_DOUBLE_EQ(healed.result.influence, expected.result.influence)
        << "user " << user;
  }
}

TEST_F(ServeUnderFaultsTest, ServesExactlyThroughFaultStorm) {
  const SocialNetwork n = MakeRunningExample();
  ServeOptions options = BaseOptions();
  options.num_threads = 4;
  options.cache_capacity = 64;
  PitexService service(&n, options);
  service.Start();

  // Storm: cache shards "fail" on every touch (forced miss, dropped
  // insert) and every pool dispatch eats a small injected delay.
  FailpointConfig cache_fault;
  cache_fault.mode = FailpointMode::kError;
  FailpointRegistry::Instance().Enable("result_cache/shard_lock",
                                       cache_fault);
  FailpointConfig delay_fault;
  delay_fault.mode = FailpointMode::kDelay;
  delay_fault.delay_ms = 1;
  FailpointRegistry::Instance().Enable("thread_pool/dispatch", delay_fault);

  constexpr size_t kUpdateRounds = 4;
  constexpr size_t kProducers = 2;
  std::atomic<bool> updates_done{false};

  std::vector<std::thread> producers;
  std::vector<std::vector<ServedResult>> observed(kProducers);
  for (size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([p, &n, &service, &updates_done, &observed] {
      size_t i = 0;
      while (!updates_done.load(std::memory_order_acquire) || i < 8) {
        const PitexQuery query = {
            .user = static_cast<VertexId>((p * 3 + i) % n.num_vertices()),
            .k = 2};
        observed[p].push_back(service.Submit(query).get());
        ++i;
      }
    });
  }

  uint64_t last_epoch = 1;
  for (size_t round = 0; round < kUpdateRounds; ++round) {
    std::vector<EdgeInfluenceUpdate> updates{MakeUpdate(n, round)};
    const uint64_t epoch = service.ApplyUpdates(updates);
    ASSERT_GT(epoch, last_epoch);  // no faults armed on the publish path
    last_epoch = epoch;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  updates_done.store(true, std::memory_order_release);
  for (std::thread& producer : producers) producer.join();

  // Every answer completed despite the storm; per-producer epochs are
  // monotone (publication order respected across steals and delays).
  for (const auto& per_producer : observed) {
    uint64_t last = 0;
    for (const ServedResult& result : per_producer) {
      ASSERT_EQ(result.status, ServeStatus::kOk);
      ASSERT_EQ(result.result.tags.size(), 2u);
      ASSERT_GE(result.epoch, last);
      ASSERT_LE(result.epoch, last_epoch);
      last = result.epoch;
    }
  }

  // The broken cache never served (or retained) anything.
  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.cache_hits, 0u);
  EXPECT_EQ(stats.cache_entries, 0u);

  // Heal everything: a fresh query sees the final epoch and the cache
  // works again.
  FailpointRegistry::Instance().DisableAll();
  const PitexQuery probe = {.user = 0, .k = 2};
  const ServedResult first = service.Submit(probe).get();
  EXPECT_EQ(first.epoch, last_epoch);
  const ServedResult second = service.Submit(probe).get();
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(second.result.tags, first.result.tags);

  ExpectConservation(service);
}

TEST_F(ServeUnderFaultsTest, DeadlineStormDegradesInsteadOfCollapsing) {
  const SocialNetwork n = MakeRunningExample();
  ServeOptions options = BaseOptions();
  options.cache_capacity = 64;
  PitexService service(&n, options);
  service.Start();

  constexpr size_t kQueries = 60;
  std::vector<std::future<ServedResult>> futures;
  std::vector<PitexQuery> queries;
  futures.reserve(kQueries);
  for (size_t i = 0; i < kQueries; ++i) {
    PitexQuery query = {.user = static_cast<VertexId>(i % n.num_vertices()),
                        .k = 2};
    switch (i % 3) {
      case 0: query.budget_seconds = 1e-9; break;    // dead on arrival
      case 1: query.budget_seconds = 200e-6; break;  // tight but livable
      default: break;                                // unconstrained
    }
    queries.push_back(query);
    futures.push_back(service.Submit(query));
  }

  size_t expired = 0, degraded = 0, ok = 0;
  for (size_t i = 0; i < kQueries; ++i) {
    const ServedResult result = futures[i].get();
    switch (result.status) {
      case ServeStatus::kDeadlineExpired:
        EXPECT_TRUE(result.ranking.empty());
        EXPECT_TRUE(result.result.degraded);
        ++expired;
        break;
      case ServeStatus::kDegraded:
        EXPECT_TRUE(result.result.degraded);
        EXPECT_FALSE(result.cache_hit);  // degraded is never cached...
        ++degraded;
        break;
      case ServeStatus::kOk:
        EXPECT_FALSE(result.result.degraded);
        EXPECT_EQ(result.result.tags.size(), 2u);
        ++ok;
        break;
      case ServeStatus::kShed:
        FAIL() << "no admission limits were configured";
    }
    if (queries[i].budget_seconds == 0.0) {
      EXPECT_EQ(result.status, ServeStatus::kOk) << "query " << i;
    }
  }
  EXPECT_EQ(expired + degraded + ok, kQueries);
  EXPECT_GT(expired, 0u);       // the 1 ns budgets cannot survive a queue
  EXPECT_GE(ok, kQueries / 3);  // every unconstrained query completed

  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.queries_served, kQueries);
  EXPECT_EQ(stats.degraded, degraded);
  EXPECT_EQ(stats.deadline_expired, expired);

  // ...so an unconstrained re-ask of a budgeted user gets the exact
  // answer, not a truncated cached ranking.
  for (VertexId user = 0; user < n.num_vertices(); ++user) {
    const ServedResult full =
        service.Submit({.user = user, .k = 2}).get();
    ASSERT_EQ(full.status, ServeStatus::kOk);
    ASSERT_EQ(full.result.tags.size(), 2u);
  }

  ExpectConservation(service);
}

TEST_F(ServeUnderFaultsTest, AdmissionShedsButPublishesProceed) {
  const SocialNetwork n = MakeRunningExample();
  ServeOptions options = BaseOptions();
  options.admission.max_queue_depth = 4;
  options.cache_capacity = 0;  // every admitted query costs real work
  PitexService service(&n, options);
  service.Start();

  // Slow the pumps so the bounded queue actually backs up.
  FailpointConfig delay_fault;
  delay_fault.mode = FailpointMode::kDelay;
  delay_fault.delay_ms = 1;
  FailpointRegistry::Instance().Enable("thread_pool/dispatch", delay_fault);

  std::atomic<bool> storm_done{false};
  std::atomic<uint64_t> published{0};
  std::thread updater([&service, &n, &storm_done, &published] {
    for (size_t round = 0; round < 3; ++round) {
      std::vector<EdgeInfluenceUpdate> updates{MakeUpdate(n, round)};
      const uint64_t epoch = service.ApplyUpdates(updates);
      if (epoch != 0) published.fetch_add(1);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    storm_done.store(true, std::memory_order_release);
  });

  std::vector<PitexQuery> burst;
  for (size_t i = 0; i < 64; ++i) {
    burst.push_back({.user = static_cast<VertexId>(i % n.num_vertices()),
                     .k = 2});
  }
  size_t served = 0, shed = 0;
  size_t batches = 0;
  while (!storm_done.load(std::memory_order_acquire) || batches < 2) {
    const std::vector<ServedResult> results = service.ServeAll(burst);
    ++batches;
    for (const ServedResult& result : results) {
      if (result.status == ServeStatus::kShed) {
        EXPECT_TRUE(result.ranking.empty());
        ++shed;
      } else {
        ASSERT_EQ(result.status, ServeStatus::kOk);
        ASSERT_EQ(result.result.tags.size(), 2u);
        ++served;
      }
    }
  }
  updater.join();

  // Conservation: every burst slot was either served or shed, the
  // bounded queue shed under pressure, and no publish starved.
  EXPECT_EQ(served + shed, batches * burst.size());
  EXPECT_GT(shed, 0u);
  EXPECT_GT(served, 0u);
  EXPECT_EQ(published.load(), 3u);

  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.queries_served, served);
  EXPECT_EQ(stats.shed_queue_full, shed);
  EXPECT_EQ(stats.admission_in_flight, 0u);  // everything drained
  EXPECT_GT(stats.queue_depth.count, 0u);

  ExpectConservation(service);
}

TEST_F(ServeUnderFaultsTest, RateLimitShedsPerUserFloods) {
  const SocialNetwork n = MakeRunningExample();
  ServeOptions options = BaseOptions();
  options.enable_updates = false;
  options.admission.user_rate_limit = 50.0;
  options.admission.user_burst = 2.0;
  PitexService service(&n, options);
  service.Start();

  // One user floods far faster than 50 qps: the burst allowance admits
  // a couple, the rest shed.
  std::vector<std::future<ServedResult>> futures;
  for (size_t i = 0; i < 40; ++i) {
    futures.push_back(service.Submit({.user = 0, .k = 2}));
  }
  size_t shed = 0;
  for (auto& future : futures) {
    const ServedResult result = future.get();
    if (result.status == ServeStatus::kShed) ++shed;
  }
  EXPECT_GT(shed, 0u);
  EXPECT_LT(shed, 40u);  // the burst allowance admitted at least two
  EXPECT_EQ(service.Stats().shed_rate_limited, shed);
}

TEST_F(ServeUnderFaultsTest, WorkerBindRetriesFaultedIndexLoads) {
  const SocialNetwork n = MakeRunningExample();
  ServeOptions options;
  options.engine.method = Method::kDelayMat;
  options.engine.seed = 5;
  options.num_threads = 2;
  options.mode = ScheduleMode::kWorkStealing;
  PitexService service(&n, options);
  service.Start();

  // Worker replicas deserialize the DelayMat snapshot on first bind;
  // fail the first two loads. The 3-attempt retry in BindWorker must
  // absorb both and still serve.
  FailpointConfig config;
  config.mode = FailpointMode::kError;
  config.fires = 2;
  FailpointRegistry::Instance().Enable("index_io/load", config);

  std::vector<PitexQuery> queries;
  for (size_t i = 0; i < 8; ++i) {
    queries.push_back({.user = static_cast<VertexId>(i % n.num_vertices()),
                       .k = 2});
  }
  const std::vector<ServedResult> results = service.ServeAll(queries);
  for (const ServedResult& result : results) {
    ASSERT_EQ(result.status, ServeStatus::kOk);
    ASSERT_EQ(result.result.tags.size(), 2u);
    ASSERT_EQ(result.epoch, 1u);
  }
  EXPECT_EQ(FailpointRegistry::Instance().FireCount("index_io/load"), 2u);
}

}  // namespace
}  // namespace pitex
