// Cross-process failover drills (docs/robustness.md, "Replication &
// failover"). Two drills, both forking a real primary process wired to
// an in-parent follower over a Unix socketpair:
//
//   1. SIGKILL drill — the primary ships WAL records semi-synchronously
//      (each drill round is acknowledged to the parent only after the
//      follower confirmed it applied), then blasts unacknowledged
//      rounds until the parent SIGKILLs it mid-stream. The follower
//      must detect the silence, promote itself, and end up
//      bit-identical to a never-crashed reference that applied the same
//      prefix — zero acknowledged-update loss, continuing service
//      included (a post-promotion write lands on the new primary).
//
//   2. SIGSTOP fencing drill — primary and follower share a file-backed
//      term authority (a TERM file, the stand-in for a coordination
//      service). The parent freezes the primary with SIGSTOP, waits for
//      the follower to win the election, then thaws it with SIGCONT:
//      the deposed primary's very next write must be rejected with
//      ApplyUpdatesOutcome::kFencedStaleTerm (child exits 43 to prove
//      it) instead of forking history — the no-split-brain invariant,
//      demonstrated across real process boundaries.
//
// Fork discipline matches tests/crash_recovery_test.cc: fork first,
// spawn parent-side threads only after, and the child never returns
// into gtest (it is killed, or _exits a distinctive code).

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "running_example.h"
#include "src/serve/pitex_service.h"
#include "src/serve/replication.h"
#include "src/serve/term_authority.h"
#include "src/util/failpoint.h"

namespace pitex {
namespace {

namespace fs = std::filesystem;

bool WaitUntil(const std::function<bool()>& pred, int timeout_ms = 30000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return pred();
}

class FailoverDrillTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FailpointRegistry::Instance().DisableAll();
    root_ = (fs::temp_directory_path() /
             ("pitex_failover_drill_" +
              std::string(::testing::UnitTest::GetInstance()
                              ->current_test_info()
                              ->name())))
                .string();
    fs::remove_all(root_);
    fs::create_directories(root_);
  }
  void TearDown() override {
    FailpointRegistry::Instance().DisableAll();
    fs::remove_all(root_);
  }

  static ServeOptions DurableOptions(const std::string& dir,
                                     uint64_t checkpoint_every = 2) {
    ServeOptions options;
    options.engine.method = Method::kIndexEst;
    options.engine.index_theta_per_vertex = 150.0;
    options.engine.seed = 5;
    options.num_threads = 2;
    options.mode = ScheduleMode::kWorkStealing;
    options.enable_updates = true;
    options.publish_backoff_initial_ms = 0.1;
    options.publish_backoff_max_ms = 1.0;
    options.durability_dir = dir;
    options.checkpoint_every = checkpoint_every;
    return options;
  }

  static EdgeInfluenceUpdate MakeUpdate(const SocialNetwork& n,
                                        uint64_t round) {
    EdgeInfluenceUpdate update;
    update.edge = static_cast<EdgeId>(round % n.num_edges());
    update.entries = {{static_cast<TopicId>(round % n.topics.num_topics()),
                       0.2 + 0.1 * static_cast<double>(round % 5)}};
    return update;
  }

  /// Bounded wait for the shipper's follower-confirmation watermark.
  static bool AwaitFollowerAck(const WalShipper& shipper, uint64_t lsn,
                               int timeout_ms) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    while (shipper.acked_lsn() < lsn) {
      if (std::chrono::steady_clock::now() >= deadline) return false;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return true;
  }

  std::string root_;
};

TEST_F(FailoverDrillTest, SigkillPrimaryPromotesFollowerBitIdentical) {
  const SocialNetwork n = MakeRunningExample();
  int sockets[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sockets), 0);
  int ack_pipe[2];
  ASSERT_EQ(::pipe(ack_pipe), 0);

  // Rounds the child acknowledges only after the FOLLOWER confirmed
  // them (semi-synchronous shipping): these are the ones the promoted
  // follower must never lose.
  constexpr uint64_t kSeedRounds = 4;    // applied before the shipper exists
  constexpr uint64_t kSyncedRounds = 3;  // follower-confirmed one by one

  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // ----- child: the primary process -----
    ::close(sockets[0]);
    ::close(ack_pipe[0]);
    auto transport = MakeFdTransport(sockets[1]);
    PitexService primary(&n, DurableOptions(root_ + "/primary"));
    primary.Start();
    uint64_t round = 0;
    // Seed history BEFORE the shipper exists so a checkpoint is on disk
    // and the follower must bootstrap from a genuinely shipped one
    // (checkpoint_every=2 guarantees it).
    for (; round < kSeedRounds; ++round) {
      std::vector<EdgeInfluenceUpdate> batch{MakeUpdate(n, round)};
      if (primary.ApplyUpdates(batch) == 0) ::_exit(44);
    }
    WalShipperOptions ship;
    ship.wal_dir = root_ + "/primary";
    WalShipper shipper(&primary, transport.get(), ship);
    shipper.Start();
    // The seed rounds count as acknowledged once the follower holds
    // them (checkpoint install + tail replay).
    if (!AwaitFollowerAck(shipper, kSeedRounds, 30000)) ::_exit(45);
    for (uint64_t i = 0; i < kSeedRounds; ++i) {
      (void)!::write(ack_pipe[1], &i, sizeof(i));
    }
    // Semi-synchronous rounds: apply, wait for the follower's ack, then
    // acknowledge to the parent.
    for (; round < kSeedRounds + kSyncedRounds; ++round) {
      std::vector<EdgeInfluenceUpdate> batch{MakeUpdate(n, round)};
      if (primary.ApplyUpdates(batch) == 0) ::_exit(44);
      if (!AwaitFollowerAck(shipper, round + 1, 30000)) ::_exit(45);
      (void)!::write(ack_pipe[1], &round, sizeof(round));
    }
    // Blast unacknowledged rounds until the parent's SIGKILL lands:
    // the kill is guaranteed to catch the primary mid-stream.
    for (;;) {
      std::vector<EdgeInfluenceUpdate> batch{MakeUpdate(n, round)};
      if (primary.ApplyUpdates(batch) == 0) ::_exit(44);
      ++round;
    }
  }

  // ----- parent: the follower process -----
  ::close(sockets[1]);
  ::close(ack_pipe[1]);
  auto transport = MakeFdTransport(sockets[0]);
  InProcessTermAuthority authority(1);
  FollowerOptions fo;
  fo.serve = DurableOptions(root_ + "/follower");
  fo.heartbeat_timeout_ms = 400;
  fo.authority = &authority;
  FollowerService follower(&n, transport.get(), fo);
  std::string error;
  ASSERT_TRUE(follower.Start(&error)) << error;

  uint64_t acked = 0;
  uint64_t value = 0;
  while (acked < kSeedRounds + kSyncedRounds &&
         ::read(ack_pipe[0], &value, sizeof(value)) ==
             static_cast<ssize_t>(sizeof(value))) {
    ++acked;
  }
  ASSERT_EQ(acked, kSeedRounds + kSyncedRounds);

  // Kill the primary mid-blast: no shutdown, no flush, no goodbye.
  ASSERT_EQ(::kill(pid, SIGKILL), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL)
      << "child did not die by SIGKILL (status " << status << ")";
  ::close(ack_pipe[0]);

  // Silence -> promotion.
  ASSERT_TRUE(WaitUntil([&] { return follower.promoted(); }))
      << "follower never promoted";
  EXPECT_EQ(follower.term(), 2u);
  EXPECT_EQ(authority.Current(), 2u);

  // Zero acknowledged-update loss: every follower-confirmed round
  // survived the crash. (The follower may legally hold a few more from
  // the unacknowledged blast.)
  const uint64_t applied = follower.applied_lsn();
  ASSERT_GE(applied, acked) << "acknowledged updates lost";

  // Bit-identical to a never-crashed reference that applied the same
  // prefix, including one post-promotion write on the new primary.
  PitexService reference(&n, DurableOptions(""));
  reference.Start();
  for (uint64_t i = 0; i < applied; ++i) {
    std::vector<EdgeInfluenceUpdate> batch{MakeUpdate(n, i)};
    ASSERT_NE(reference.ApplyUpdates(batch), 0u);
  }
  std::vector<EdgeInfluenceUpdate> post{MakeUpdate(n, applied)};
  ASSERT_NE(follower.service().ApplyUpdates(post), 0u);
  ASSERT_NE(reference.ApplyUpdates(post), 0u);
  for (VertexId user = 0; user < n.num_vertices(); ++user) {
    const PitexQuery query = {.user = user, .k = 2};
    const ServedResult got = follower.service().Submit(query).get();
    const ServedResult want = reference.Submit(query).get();
    ASSERT_EQ(got.status, ServeStatus::kOk);
    ASSERT_EQ(got.result.tags, want.result.tags) << "user " << user;
    ASSERT_EQ(got.result.influence, want.result.influence)
        << "user " << user;
  }
  follower.Stop();
}

TEST_F(FailoverDrillTest, SigstopElectionFencesTheDeposedPrimary) {
  const SocialNetwork n = MakeRunningExample();
  const std::string term_file = root_ + "/TERM";
  int sockets[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sockets), 0);
  int ack_pipe[2];
  ASSERT_EQ(::pipe(ack_pipe), 0);

  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // ----- child: the primary, fenced through the shared TERM file -----
    ::close(sockets[0]);
    ::close(ack_pipe[0]);
    auto transport = MakeFdTransport(sockets[1]);
    FileTermAuthority authority(term_file, 1);
    ServeOptions options = DurableOptions(root_ + "/primary");
    options.term_authority = &authority;
    options.term = 1;
    PitexService primary(&n, options);
    WalShipperOptions ship;
    ship.wal_dir = root_ + "/primary";
    ship.term = 1;
    WalShipper shipper(&primary, transport.get(), ship);
    shipper.Start();  // starts the primary too
    for (uint64_t round = 0; round < 64; ++round) {
      std::vector<EdgeInfluenceUpdate> batch{MakeUpdate(n, round)};
      ApplyUpdatesOutcome outcome;
      if (primary.ApplyUpdates(batch, &outcome) == 0) {
        if (outcome == ApplyUpdatesOutcome::kFencedStaleTerm) {
          ::_exit(43);  // fenced exactly as the invariant demands
        }
        ::_exit(44);  // any other failure is a drill bug
      }
      // Follower confirmation is best-effort here: after the election
      // the old term's records are ignored, so the wait must time out
      // rather than hang (the next ApplyUpdates then hits the fence).
      if (AwaitFollowerAck(shipper, round + 1, 2000)) {
        (void)!::write(ack_pipe[1], &round, sizeof(round));
      }
    }
    ::_exit(42);  // never fenced: the parent fails the test
  }

  // ----- parent: the follower sharing the TERM file -----
  ::close(sockets[1]);
  ::close(ack_pipe[1]);
  auto transport = MakeFdTransport(sockets[0]);
  FileTermAuthority authority(term_file, 1);
  FollowerOptions fo;
  fo.serve = DurableOptions(root_ + "/follower");
  fo.heartbeat_timeout_ms = 400;
  fo.authority = &authority;
  FollowerService follower(&n, transport.get(), fo);
  std::string error;
  ASSERT_TRUE(follower.Start(&error)) << error;

  // Let a few follower-confirmed rounds through, then freeze the
  // primary mid-reign.
  uint64_t acked = 0;
  uint64_t value = 0;
  while (acked < 3 && ::read(ack_pipe[0], &value, sizeof(value)) ==
                          static_cast<ssize_t>(sizeof(value))) {
    ++acked;
  }
  ASSERT_EQ(acked, 3u);
  ASSERT_EQ(::kill(pid, SIGSTOP), 0);

  // The frozen primary misses its heartbeats; the follower wins the
  // election and advances the shared TERM file.
  ASSERT_TRUE(WaitUntil([&] { return follower.promoted(); }))
      << "follower never promoted";
  EXPECT_EQ(follower.term(), 2u);
  EXPECT_EQ(authority.Current(), 2u);

  // Thaw the deposed primary. It still believes it is term 1; its next
  // write must die on the fence — proven by exit code 43.
  ASSERT_EQ(::kill(pid, SIGCONT), 0);
  while (::read(ack_pipe[0], &value, sizeof(value)) ==
         static_cast<ssize_t>(sizeof(value))) {
  }
  ::close(ack_pipe[0]);
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status)) << "status " << status;
  EXPECT_EQ(WEXITSTATUS(status), 43)
      << "deposed primary was not fenced (exit "
      << (WIFEXITED(status) ? WEXITSTATUS(status) : -1) << ")";

  // The promoted follower is the legitimate writer under term 2.
  std::vector<EdgeInfluenceUpdate> post{MakeUpdate(n, 99)};
  ApplyUpdatesOutcome outcome;
  ASSERT_NE(follower.service().ApplyUpdates(post, &outcome), 0u);
  EXPECT_EQ(outcome, ApplyUpdatesOutcome::kPublished);
  follower.Stop();
}

}  // namespace
}  // namespace pitex
