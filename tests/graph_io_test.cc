#include "src/graph/graph_io.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "src/graph/generators.h"

namespace pitex {
namespace {

std::string TempPath(const char* name) {
  return testing::TempDir() + "/" + name;
}

TEST(GraphIoTest, RoundTripPreservesEdgeOrder) {
  Rng rng(4);
  Graph g = ErdosRenyi(50, 200, &rng);
  const std::string path = TempPath("roundtrip.txt");
  ASSERT_TRUE(SaveGraph(g, path));
  auto loaded = LoadGraph(path);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->num_vertices(), g.num_vertices());
  ASSERT_EQ(loaded->num_edges(), g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_EQ(loaded->Tail(e), g.Tail(e));
    EXPECT_EQ(loaded->Head(e), g.Head(e));
  }
  std::remove(path.c_str());
}

TEST(GraphIoTest, EmptyGraphRoundTrip) {
  GraphBuilder b(5);
  Graph g = b.Build();
  const std::string path = TempPath("empty.txt");
  ASSERT_TRUE(SaveGraph(g, path));
  auto loaded = LoadGraph(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->num_vertices(), 5u);
  EXPECT_EQ(loaded->num_edges(), 0u);
  std::remove(path.c_str());
}

TEST(GraphIoTest, MissingFileFails) {
  EXPECT_FALSE(LoadGraph("/nonexistent/dir/graph.txt").has_value());
}

TEST(GraphIoTest, MalformedHeaderFails) {
  const std::string path = TempPath("bad_header.txt");
  std::ofstream(path) << "not numbers\n";
  EXPECT_FALSE(LoadGraph(path).has_value());
  std::remove(path.c_str());
}

TEST(GraphIoTest, TruncatedEdgesFails) {
  const std::string path = TempPath("truncated.txt");
  std::ofstream(path) << "3 2\n0 1\n";  // promises 2 edges, provides 1
  EXPECT_FALSE(LoadGraph(path).has_value());
  std::remove(path.c_str());
}

TEST(GraphIoTest, OutOfRangeVertexFails) {
  const std::string path = TempPath("oob.txt");
  std::ofstream(path) << "2 1\n0 5\n";
  EXPECT_FALSE(LoadGraph(path).has_value());
  std::remove(path.c_str());
}

TEST(GraphIoTest, SaveToUnwritablePathFails) {
  GraphBuilder b(1);
  EXPECT_FALSE(SaveGraph(b.Build(), "/nonexistent/dir/out.txt"));
}

}  // namespace
}  // namespace pitex
