#include "src/model/tag_catalog.h"

#include <gtest/gtest.h>

namespace pitex {
namespace {

TEST(TagCatalogTest, InternAssignsSequentialIds) {
  TagCatalog c;
  EXPECT_EQ(c.Intern("alpha"), 0u);
  EXPECT_EQ(c.Intern("beta"), 1u);
  EXPECT_EQ(c.Intern("gamma"), 2u);
  EXPECT_EQ(c.size(), 3u);
}

TEST(TagCatalogTest, InternIsIdempotent) {
  TagCatalog c;
  const TagId id = c.Intern("tag");
  EXPECT_EQ(c.Intern("tag"), id);
  EXPECT_EQ(c.size(), 1u);
}

TEST(TagCatalogTest, FindExistingAndMissing) {
  TagCatalog c;
  c.Intern("x");
  EXPECT_EQ(c.Find("x"), std::optional<TagId>(0));
  EXPECT_FALSE(c.Find("y").has_value());
}

TEST(TagCatalogTest, NameRoundTrip) {
  TagCatalog c;
  const TagId a = c.Intern("infrastructure");
  const TagId b = c.Intern("social security");
  EXPECT_EQ(c.Name(a), "infrastructure");
  EXPECT_EQ(c.Name(b), "social security");
}

TEST(TagCatalogTest, EmptyCatalog) {
  TagCatalog c;
  EXPECT_EQ(c.size(), 0u);
  EXPECT_FALSE(c.Find("anything").has_value());
}

}  // namespace
}  // namespace pitex
