// Tests for RR-Graph generation (Def. 2) and tag-aware reachability
// (Def. 3): structural invariants, threshold distributions, and unbiased
// estimation against the exact oracle.

#include <gtest/gtest.h>

#include "running_example.h"
#include "src/graph/generators.h"
#include "src/index/rr_graph.h"
#include "src/sampling/exact.h"

namespace pitex {
namespace {

TEST(RRGraphTest, RootAlwaysPresent) {
  SocialNetwork n = MakeRunningExample();
  Rng rng(1);
  for (VertexId root = 0; root < n.num_vertices(); ++root) {
    const RRGraph rr = GenerateRRGraph(n.graph, n.influence, root, &rng);
    EXPECT_TRUE(rr.LocalIndex(root).has_value());
  }
}

TEST(RRGraphTest, VerticesSortedUnique) {
  SocialNetwork n = MakeRunningExample();
  Rng rng(2);
  for (int i = 0; i < 50; ++i) {
    const RRGraph rr = GenerateRRGraph(n.graph, n.influence, 6, &rng);
    for (size_t j = 1; j < rr.vertices.size(); ++j) {
      EXPECT_LT(rr.vertices[j - 1], rr.vertices[j]);
    }
  }
}

TEST(RRGraphTest, ThresholdsBelowEnvelope) {
  SocialNetwork n = MakeRunningExample();
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    const RRGraph rr = GenerateRRGraph(n.graph, n.influence, 6, &rng);
    for (const auto& e : rr.edges) {
      EXPECT_LT(static_cast<double>(e.threshold),
                n.influence.MaxProb(e.edge));
      EXPECT_GE(e.threshold, 0.0f);
    }
  }
}

TEST(RRGraphTest, EveryVertexReachesRootUnderEnvelope) {
  // Under the envelope p(e) every stored edge is live, so every vertex in
  // the RR-Graph must reach the root.
  SocialNetwork n = MakeRunningExample();
  const EnvelopeProbs envelope(n.influence);
  Rng rng(4);
  for (int i = 0; i < 100; ++i) {
    const RRGraph rr = GenerateRRGraph(n.graph, n.influence, 6, &rng);
    for (VertexId v : rr.vertices) {
      EXPECT_TRUE(IsReachable(rr, v, envelope, nullptr))
          << "vertex " << v << " cannot reach root";
    }
  }
}

TEST(RRGraphTest, RootTriviallyReachable) {
  SocialNetwork n = MakeRunningExample();
  Rng rng(5);
  const RRGraph rr = GenerateRRGraph(n.graph, n.influence, 3, &rng);
  const TopicPosterior zero(3, 0.0);
  const PosteriorProbs probs(n.influence, zero);
  EXPECT_TRUE(IsReachable(rr, 3, probs, nullptr));  // u == root
}

TEST(RRGraphTest, AbsentVertexNotReachable) {
  SocialNetwork n = MakeRunningExample();
  Rng rng(6);
  const RRGraph rr = GenerateRRGraph(n.graph, n.influence, 1, &rng);
  // u5 (id 4) has no outgoing edges and can never appear in u2's RR-Graph.
  const EnvelopeProbs envelope(n.influence);
  EXPECT_FALSE(IsReachable(rr, 4, envelope, nullptr));
}

TEST(RRGraphTest, MembershipFrequencyMatchesInfluence) {
  // Pr[u in RR-Graph of v] = Pr[u activates v under the envelope]; summing
  // over uniform v gives E[I(u|*)] / |V|. Check u1 on the running example.
  SocialNetwork n = MakeRunningExample();
  const EnvelopeProbs envelope(n.influence);
  const double exact = ExactInfluence(n.graph, envelope, 0);

  Rng rng(7);
  const int trials = 40000;
  int containing = 0;
  for (int i = 0; i < trials; ++i) {
    const auto root = static_cast<VertexId>(rng.NextBounded(7));
    const RRGraph rr = GenerateRRGraph(n.graph, n.influence, root, &rng);
    containing += rr.LocalIndex(0).has_value();
  }
  const double estimated =
      static_cast<double>(containing) / trials * 7.0;
  EXPECT_NEAR(estimated, exact, 0.05 * exact);
}

TEST(RRGraphTest, TagAwareReachabilityMatchesExample5) {
  // Example 5's specific thresholds: c(u1->u2) = 0.3 blocks {w3,w4}
  // (p = 0.13), while the path u1->u3->u4->u6 with small thresholds is
  // live. Build the RR-Graphs by hand to pin the c(e) values.
  SocialNetwork n = MakeRunningExample();
  const TagId tags[] = {2, 3};
  const auto post = n.topics.Posterior(tags);
  const PosteriorProbs probs(n.influence, post);

  // G_RR(u2): single edge u1->u2 with c = 0.3.
  {
    const GlobalEdgeSample edges[] = {{0, 1, 0, 0.3f}};
    const RRGraph rr = AssembleRRGraph(1, {0, 1}, edges);
    EXPECT_FALSE(IsReachable(rr, 0, probs, nullptr));
  }
  // p(u1->u3 | {w3,w4}) = 0.5, p(u3->u6) = 4.5/13 ~= 0.346: live when the
  // thresholds are small.
  {
    const GlobalEdgeSample edges[] = {
        {0, 2, 1, 0.2f},  // u1 -> u3
        {2, 5, 3, 0.2f},  // u3 -> u6
    };
    const RRGraph rr = AssembleRRGraph(5, {0, 2, 5}, edges);
    EXPECT_TRUE(IsReachable(rr, 0, probs, nullptr));
  }
  // Same graph with a threshold above 0.346 on u3->u6: dead.
  {
    const GlobalEdgeSample edges[] = {
        {0, 2, 1, 0.2f},
        {2, 5, 3, 0.4f},
    };
    const RRGraph rr = AssembleRRGraph(5, {0, 2, 5}, edges);
    EXPECT_FALSE(IsReachable(rr, 0, probs, nullptr));
  }
}

TEST(RRGraphTest, AssembleDropsEdgesOutsideVertexSet) {
  const GlobalEdgeSample edges[] = {
      {0, 1, 0, 0.1f},
      {2, 1, 1, 0.1f},  // tail 2 not in vertex set
  };
  const RRGraph rr = AssembleRRGraph(1, {0, 1}, edges);
  EXPECT_EQ(rr.edges.size(), 1u);
}

TEST(RRGraphTest, SizeBytesPositiveAndMonotone) {
  SocialNetwork n = MakeRunningExample();
  Rng rng(8);
  const RRGraph small = AssembleRRGraph(0, {0}, {});
  const RRGraph big = GenerateRRGraph(n.graph, n.influence, 6, &rng);
  EXPECT_GT(small.SizeBytes(), 0u);
  EXPECT_GE(big.SizeBytes(), small.SizeBytes());
}

TEST(RRGraphTest, EdgeVisitCounterAccumulates) {
  SocialNetwork n = MakeRunningExample();
  Rng rng(9);
  const EnvelopeProbs envelope(n.influence);
  uint64_t visits = 0;
  for (int i = 0; i < 10; ++i) {
    const RRGraph rr = GenerateRRGraph(n.graph, n.influence, 6, &rng);
    IsReachable(rr, 0, envelope, &visits);
  }
  // At least some probing must have happened over 10 graphs.
  EXPECT_GT(visits, 0u);
}

}  // namespace
}  // namespace pitex
