// Equivalence tests for arena-staged index construction
// (src/index/sketch_arena.h + RrSketchPool::PackFrom):
//
//   * representation: the arena-built pool is byte-identical to packing
//     standalone GenerateRRGraph outputs — the arena and the two-pass
//     pack are pure layout changes;
//   * RNG scheme: the combined-draw + geometric-skip probe changed the
//     draw *sequence* (documented in docs/perf.md). A fixed-seed golden
//     hash pins the current scheme so future refactors cannot drift it
//     silently, and a chi-squared test checks the sketch-size (spread)
//     distribution against a verbatim retained copy of the pre-arena
//     two-draw generator — the distributions must agree because the
//     per-edge law (live w.p. p(e), threshold U[0, p(e))) is unchanged;
//   * allocations: steady-state sketch generation into a warmed arena is
//     measured allocation-free;
//   * repairs: SketchArena::RebuildRepairedSketch matches the
//     ReachingRoot + AssembleRRGraph reference it replaced.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <new>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "running_example.h"
#include "src/index/rr_index.h"
#include "src/index/sketch_arena.h"

// Global allocation counter: every operator new in the test binary bumps
// it, so "zero allocations" is measured, not assumed. The replacement
// operators are malloc-backed; GCC's heuristic flags inlined new/free
// pairs from replacement allocators, which is exactly what we intend.
#if defined(__GNUC__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
namespace {
std::atomic<uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace pitex {
namespace {

// Replicates RrIndex::Build's per-sample RNG stream derivation.
Rng StreamFor(uint64_t seed, uint64_t i) {
  uint64_t mix = seed ^ (0x9e3779b97f4a7c15ULL * (i + 1));
  return Rng(SplitMix64(&mix));
}

// A sparse network whose envelopes sit deep in the geometric-skip regime
// (vertex max << 1/16): a celebrity-style hub with many weak in-edges
// plus a weak ring, so reverse BFS meets long low-probability in-edge
// runs and the skip path is actually exercised.
SocialNetwork MakeSkipRegimeNetwork() {
  constexpr size_t kFans = 400;
  SocialNetwork n;
  GraphBuilder builder(kFans + 1);
  for (VertexId f = 1; f <= kFans; ++f) builder.AddEdge(f, 0);
  for (VertexId f = 1; f <= kFans; ++f) {
    builder.AddEdge(f, 1 + (f % kFans));
  }
  n.graph = builder.Build();
  n.topics = TopicModel(1, 1);
  n.topics.SetTagTopic(0, 0, 1.0);
  InfluenceGraphBuilder influence(n.graph.num_edges());
  for (EdgeId e = 0; e < n.graph.num_edges(); ++e) {
    const EdgeTopicEntry entry{0, e < kFans ? 0.01 : 0.03};
    influence.SetEdgeTopics(e, std::span(&entry, 1));
  }
  n.influence = influence.Build();
  return n;
}

uint64_t Fnv1a(uint64_t hash, const void* data, size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < bytes; ++i) {
    hash ^= p[i];
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

// Field-wise content hash of every sketch in a built index (struct
// padding never enters the hash).
uint64_t IndexContentHash(const RrIndex& index) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < index.num_graphs(); ++i) {
    const RRView rr = index.graph(i);
    hash = Fnv1a(hash, &rr.root, sizeof(rr.root));
    hash = Fnv1a(hash, rr.vertices.data(),
                 rr.vertices.size() * sizeof(VertexId));
    hash = Fnv1a(hash, rr.offsets.data(),
                 rr.offsets.size() * sizeof(uint32_t));
    for (const RRLocalEdge& e : rr.edges) {
      hash = Fnv1a(hash, &e.head_local, sizeof(e.head_local));
      hash = Fnv1a(hash, &e.edge, sizeof(e.edge));
      hash = Fnv1a(hash, &e.threshold, sizeof(e.threshold));
    }
  }
  return hash;
}

// Verbatim retained pre-arena generator (rr_graph.cc before the arena
// rebuild): double envelopes, one Bernoulli draw plus one threshold draw
// per live edge, no geometric skips. The new scheme must reproduce its
// *distribution* (chi-squared below), not its draw sequence.
RRGraph ReferenceGenerateRRGraph(const Graph& graph,
                                 const InfluenceGraph& influence,
                                 VertexId root, Rng* rng) {
  std::unordered_set<VertexId> visited{root};
  std::vector<VertexId> vertices{root};
  std::vector<GlobalEdgeSample> live;
  std::vector<VertexId> stack{root};
  while (!stack.empty()) {
    const VertexId v = stack.back();
    stack.pop_back();
    for (const auto& [w, e] : graph.InEdges(v)) {
      const double p = influence.MaxProb(e);
      if (p <= 0.0) continue;
      if (!rng->NextBernoulli(p)) continue;  // dead for every W
      const auto threshold = static_cast<float>(rng->NextDouble() * p);
      live.push_back(GlobalEdgeSample{w, v, e, threshold});
      if (visited.insert(w).second) {
        vertices.push_back(w);
        stack.push_back(w);
      }
    }
  }
  return AssembleRRGraph(root, std::move(vertices), live);
}

TEST(IndexBuildEquivalenceTest, ArenaPoolMatchesStandaloneGeneration) {
  // The arena-built pool must equal packing standalone GenerateRRGraph
  // outputs: pure representation change, same draws, same layout.
  const SocialNetwork n = MakeRunningExample();
  RrIndexOptions options;
  options.theta_override = 2000;
  options.seed = 7;
  RrIndex index(n, options);
  index.Build();

  std::vector<RRGraph> staging(options.theta_override);
  for (uint64_t i = 0; i < options.theta_override; ++i) {
    Rng rng = StreamFor(options.seed, i);
    const auto root =
        static_cast<VertexId>(rng.NextBounded(n.num_vertices()));
    staging[i] = GenerateRRGraph(n.graph, n.influence, root, &rng);
  }
  const RrSketchPool reference =
      RrSketchPool::Pack(staging, n.num_vertices());

  ASSERT_EQ(index.pool().num_sketches(), reference.num_sketches());
  for (size_t i = 0; i < reference.num_sketches(); ++i) {
    const RRView got = index.pool().View(i);
    const RRView want = reference.View(i);
    ASSERT_EQ(got.root, want.root) << "sketch " << i;
    ASSERT_TRUE(std::ranges::equal(got.vertices, want.vertices))
        << "sketch " << i;
    ASSERT_TRUE(std::ranges::equal(got.offsets, want.offsets))
        << "sketch " << i;
    ASSERT_EQ(got.edges.size(), want.edges.size()) << "sketch " << i;
    for (size_t j = 0; j < want.edges.size(); ++j) {
      ASSERT_EQ(got.edges[j].head_local, want.edges[j].head_local);
      ASSERT_EQ(got.edges[j].edge, want.edges[j].edge);
      ASSERT_EQ(got.edges[j].threshold, want.edges[j].threshold);
    }
  }
  for (VertexId v = 0; v < n.num_vertices(); ++v) {
    ASSERT_TRUE(std::ranges::equal(index.pool().Containing(v),
                                   reference.Containing(v)))
        << "vertex " << v;
  }
}

TEST(IndexBuildEquivalenceTest, FixedSeedGoldenHash) {
  // Pins the exact draw scheme (combined draw, float envelopes,
  // geometric skips, arena assembly). An intentional sampling change
  // must update these constants — and the docs/perf.md derivation.
  const SocialNetwork example = MakeRunningExample();
  RrIndexOptions options;
  options.theta_override = 512;
  options.seed = 7;
  RrIndex dense_index(example, options);
  dense_index.Build();
  EXPECT_EQ(IndexContentHash(dense_index), 0xb1bf3513731c5a79ULL)
      << std::hex << IndexContentHash(dense_index);

  // Skip-regime graph: exercises the geometric path specifically.
  const SocialNetwork sparse = MakeSkipRegimeNetwork();
  options.seed = 11;
  RrIndex sparse_index(sparse, options);
  sparse_index.Build();
  EXPECT_EQ(IndexContentHash(sparse_index), 0x867ec66e2fd6512bULL)
      << std::hex << IndexContentHash(sparse_index);
}

TEST(IndexBuildEquivalenceTest, SpreadDistributionMatchesReference) {
  // Chi-squared two-sample test on the sketch vertex-count distribution:
  // the geometric-skip generator draws from exactly the per-edge law of
  // the retained two-draw reference, so the size histograms must agree.
  // Fixed seeds make the statistic deterministic; the 0.001-level
  // critical value leaves generous room for the envelope's float
  // round-up (a <= 2^-24 relative perturbation).
  const SocialNetwork n = MakeSkipRegimeNetwork();
  constexpr int kSamples = 20000;
  constexpr size_t kBuckets = 8;  // sizes 1..7 and >= 8
  std::vector<double> current(kBuckets, 0.0);
  std::vector<double> reference(kBuckets, 0.0);
  Rng cur_rng(1234);
  Rng ref_rng(1234);
  for (int i = 0; i < kSamples; ++i) {
    const auto root = static_cast<VertexId>(
        cur_rng.NextBounded(n.num_vertices()));
    (void)ref_rng.NextBounded(n.num_vertices());  // mirror the root draw
    const RRGraph cur = GenerateRRGraph(n.graph, n.influence, root, &cur_rng);
    const RRGraph ref =
        ReferenceGenerateRRGraph(n.graph, n.influence, root, &ref_rng);
    ++current[std::min(cur.vertices.size(), kBuckets) - 1];
    ++reference[std::min(ref.vertices.size(), kBuckets) - 1];
  }
  double stat = 0.0;
  size_t df = 0;
  for (size_t b = 0; b < kBuckets; ++b) {
    const double total = current[b] + reference[b];
    if (total < 10.0) continue;  // merge-or-skip sparse tail buckets
    const double diff = current[b] - reference[b];
    stat += diff * diff / total;
    ++df;
  }
  ASSERT_GE(df, 2u);
  // Chi-squared 0.999 quantiles for df = 1..8.
  const double critical[] = {10.83, 13.82, 16.27, 18.47,
                             20.52, 22.46, 24.32, 26.12};
  EXPECT_LT(stat, critical[df - 1]) << "df=" << df;
}

TEST(IndexBuildEquivalenceTest, SteadyStateGenerationAllocatesNothing) {
  const SocialNetwork n = MakeRunningExample();
  const EnvelopeTable envelope(n.graph, n.influence);
  SketchArena arena;
  // Each round replays the same seed, so the working set is identical
  // and the warmup round establishes every buffer's high-water mark.
  const auto run_round = [&] {
    Rng rng(3);
    arena.Clear();
    for (uint64_t i = 0; i < 64; ++i) {
      const auto root =
          static_cast<VertexId>(rng.NextBounded(n.num_vertices()));
      arena.Generate(n.graph, envelope, root, &rng, i);
    }
  };
  run_round();  // warmup
  const uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int round = 0; round < 10; ++round) run_round();
  const uint64_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after, before) << "steady-state sketch generation allocated";
  EXPECT_GT(arena.num_sketches(), 0u);
}

TEST(IndexBuildEquivalenceTest, RebuildRepairedSketchMatchesAssemble) {
  // RebuildRepairedSketch == ReachingRoot + AssembleRRGraph (the repair
  // pipeline it replaced), including orphaned-subtree pruning and
  // per-tail edge order.
  const VertexId root = 5;
  const std::vector<GlobalEdgeSample> edges = {
      {2, 5, 0, 0.1f},  // 2 -> root
      {1, 2, 1, 0.2f},  // 1 -> 2 -> root
      {3, 4, 2, 0.3f},  // orphan pair: 3 -> 4 does not reach root
      {4, 3, 3, 0.4f},
      {6, 2, 4, 0.5f},  // 6 -> 2 -> root
      {1, 2, 5, 0.6f},  // parallel edge, order must be preserved
  };
  // Reference: reverse BFS for the reaching set, then AssembleRRGraph.
  std::unordered_map<VertexId, std::vector<VertexId>> tails_of;
  for (const GlobalEdgeSample& e : edges) tails_of[e.head].push_back(e.tail);
  std::vector<VertexId> keep{root};
  std::unordered_set<VertexId> seen{root};
  std::vector<VertexId> stack{root};
  while (!stack.empty()) {
    const VertexId v = stack.back();
    stack.pop_back();
    const auto it = tails_of.find(v);
    if (it == tails_of.end()) continue;
    for (const VertexId t : it->second) {
      if (seen.insert(t).second) {
        keep.push_back(t);
        stack.push_back(t);
      }
    }
  }
  const RRGraph want = AssembleRRGraph(root, keep, edges);

  SketchArena arena;
  RRGraph got;
  arena.RebuildRepairedSketch(root, /*num_vertices=*/8, edges, &got);
  EXPECT_EQ(got.root, want.root);
  EXPECT_EQ(got.vertices, want.vertices);
  EXPECT_EQ(got.offsets, want.offsets);
  ASSERT_EQ(got.edges.size(), want.edges.size());
  for (size_t i = 0; i < want.edges.size(); ++i) {
    EXPECT_EQ(got.edges[i].head_local, want.edges[i].head_local);
    EXPECT_EQ(got.edges[i].edge, want.edges[i].edge);
    EXPECT_EQ(got.edges[i].threshold, want.edges[i].threshold);
  }
}

}  // namespace
}  // namespace pitex
