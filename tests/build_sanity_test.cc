// Build-sanity suite: asserts that every bench binary completes its
// --smoke path and that every example binary exits 0 when run with
// --help (pitex_cli) or no arguments (the self-contained walkthroughs).
//
// The binary lists arrive as colon-separated paths in the environment
// variables PITEX_BENCH_BINARIES and PITEX_EXAMPLE_BINARIES, set by the
// CTest registration in tests/CMakeLists.txt. Run outside CTest the suite
// skips instead of failing, so `./build_sanity_test` alone stays green.

#include <sys/wait.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace {

std::vector<std::string> SplitPaths(const char* env_value) {
  std::vector<std::string> paths;
  if (env_value == nullptr) return paths;
  std::string value(env_value);
  size_t start = 0;
  while (start <= value.size()) {
    const size_t colon = value.find(':', start);
    const size_t end = colon == std::string::npos ? value.size() : colon;
    if (end > start) paths.push_back(value.substr(start, end - start));
    if (colon == std::string::npos) break;
    start = colon + 1;
  }
  return paths;
}

std::string BaseName(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

// Runs `command` through the shell and returns the process exit code
// (-1 if the process did not exit normally).
int RunCommand(const std::string& command) {
  const int status = std::system(command.c_str());
  if (status == -1) return -1;
  if (WIFEXITED(status)) return WEXITSTATUS(status);
  return -1;
}

TEST(BuildSanityTest, EveryBenchBinaryRunsSmoke) {
  const std::vector<std::string> benches =
      SplitPaths(std::getenv("PITEX_BENCH_BINARIES"));
  if (benches.empty()) {
    GTEST_SKIP() << "PITEX_BENCH_BINARIES not set (run under CTest)";
  }
  for (const std::string& bench : benches) {
    SCOPED_TRACE(bench);
    const int code = RunCommand("'" + bench + "' --smoke > /dev/null");
    EXPECT_EQ(code, 0) << BaseName(bench) << " --smoke exited " << code;
  }
}

TEST(BuildSanityTest, EveryExampleBinaryExitsZero) {
  const std::vector<std::string> examples =
      SplitPaths(std::getenv("PITEX_EXAMPLE_BINARIES"));
  if (examples.empty()) {
    GTEST_SKIP() << "PITEX_EXAMPLE_BINARIES not set (run under CTest)";
  }
  for (const std::string& example : examples) {
    SCOPED_TRACE(example);
    // pitex_cli wants a subcommand; --help is its zero-exit path. The
    // walkthrough examples run argument-free.
    const bool is_cli = BaseName(example) == "pitex_cli";
    const std::string args = is_cli ? " --help" : "";
    const int code = RunCommand("'" + example + "'" + args + " > /dev/null");
    EXPECT_EQ(code, 0) << BaseName(example) << args << " exited " << code;
  }
}

}  // namespace
