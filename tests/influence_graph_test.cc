#include "src/model/influence_graph.h"

#include <gtest/gtest.h>

#include "running_example.h"

namespace pitex {
namespace {

TEST(InfluenceGraphTest, EdgeTopicsStoredSortedAndZeroDropped) {
  InfluenceGraphBuilder b(1);
  const EdgeTopicEntry entries[] = {{2, 0.3}, {0, 0.5}, {1, 0.0}};
  b.SetEdgeTopics(0, entries);
  InfluenceGraph g = b.Build();
  const auto topics = g.EdgeTopics(0);
  ASSERT_EQ(topics.size(), 2u);
  EXPECT_EQ(topics[0].topic, 0u);
  EXPECT_EQ(topics[1].topic, 2u);
}

TEST(InfluenceGraphTest, UnsetEdgeIsEmpty) {
  InfluenceGraphBuilder b(2);
  const EdgeTopicEntry entries[] = {{0, 0.4}};
  b.SetEdgeTopics(1, entries);
  InfluenceGraph g = b.Build();
  EXPECT_TRUE(g.EdgeTopics(0).empty());
  EXPECT_EQ(g.MaxProb(0), 0.0);
  EXPECT_EQ(g.MaxProb(1), 0.4);
}

TEST(InfluenceGraphTest, EdgeTopicProbLookup) {
  SocialNetwork n = MakeRunningExample();
  EXPECT_DOUBLE_EQ(n.influence.EdgeTopicProb(0, 0), 0.4);
  EXPECT_DOUBLE_EQ(n.influence.EdgeTopicProb(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(n.influence.EdgeTopicProb(1, 1), 0.5);
  EXPECT_DOUBLE_EQ(n.influence.EdgeTopicProb(1, 2), 0.5);
}

// Example 1: p((u1,u2) | {w1, w2}) = 0.2.
TEST(InfluenceGraphTest, RunningExampleEdgeProbability) {
  SocialNetwork n = MakeRunningExample();
  const TagId tags[] = {0, 1};
  const auto post = n.topics.Posterior(tags);
  EXPECT_NEAR(n.influence.EdgeProb(0, post), 0.2, 1e-12);
}

TEST(InfluenceGraphTest, MaxProbIsEnvelope) {
  SocialNetwork n = MakeRunningExample();
  // For every edge and every tag set, p(e|W) <= p(e).
  for (TagId a = 0; a < 4; ++a) {
    for (TagId b = a + 1; b < 4; ++b) {
      const TagId tags[] = {a, b};
      const auto post = n.topics.Posterior(tags);
      for (EdgeId e = 0; e < n.num_edges(); ++e) {
        EXPECT_LE(n.influence.EdgeProb(e, post),
                  n.influence.MaxProb(e) + 1e-12);
      }
    }
  }
}

TEST(InfluenceGraphTest, ZeroPosteriorZeroesEveryEdge) {
  SocialNetwork n = MakeRunningExample();
  const TopicPosterior zero(3, 0.0);
  for (EdgeId e = 0; e < n.num_edges(); ++e) {
    EXPECT_EQ(n.influence.EdgeProb(e, zero), 0.0);
  }
}

TEST(ReachableSetTest, FullReachabilityUnderEnvelope) {
  SocialNetwork n = MakeRunningExample();
  const auto r = ComputeMaxReachableSet(n.graph, n.influence, 0);
  // u1 reaches everyone except u5 (id 4) in the running example.
  EXPECT_EQ(r.vertices.size(), 6u);
  EXPECT_EQ(r.num_internal_edges, 7u);
}

TEST(ReachableSetTest, TagSetRestrictsReachability) {
  SocialNetwork n = MakeRunningExample();
  const TagId tags[] = {0, 1};  // {w1, w2}: z3-only edges vanish
  const auto post = n.topics.Posterior(tags);
  const auto r = ComputeReachableSet(n.graph, n.influence, post, 0);
  // Reachable: u1, u2, u3, u4 (z3 edges e3..e6 are dead).
  EXPECT_EQ(r.vertices.size(), 4u);
  EXPECT_EQ(r.num_internal_edges, 3u);
}

TEST(ReachableSetTest, IsolatedSource) {
  SocialNetwork n = MakeRunningExample();
  const auto r = ComputeMaxReachableSet(n.graph, n.influence, 4);  // u5
  EXPECT_EQ(r.vertices.size(), 1u);
  EXPECT_EQ(r.num_internal_edges, 0u);
}

TEST(InfluenceGraphDeathTest, RejectsSettingEdgeTwice) {
  InfluenceGraphBuilder b(1);
  const EdgeTopicEntry entries[] = {{0, 0.4}};
  b.SetEdgeTopics(0, entries);
  EXPECT_DEATH(b.SetEdgeTopics(0, entries), "twice");
}

TEST(InfluenceGraphDeathTest, RejectsDuplicateTopic) {
  InfluenceGraphBuilder b(1);
  const EdgeTopicEntry entries[] = {{0, 0.4}, {0, 0.5}};
  EXPECT_DEATH(b.SetEdgeTopics(0, entries), "duplicate");
}

}  // namespace
}  // namespace pitex
