// Randomized robustness fuzzing for the index persistence layer:
// whatever bytes arrive, LoadRrIndex / LoadDelayMatIndex must either
// return a valid index or fail cleanly — never crash, never hand back a
// structurally inconsistent object. (Deterministic seeds; a few hundred
// mutations per strategy.)

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "running_example.h"
#include "src/index/index_io.h"
#include "src/util/random.h"

namespace pitex {
namespace {

std::string ValidRrIndexBytes(const SocialNetwork& n) {
  RrIndexOptions options;
  options.theta_override = 500;
  options.seed = 3;
  RrIndex index(n, options);
  index.Build();
  std::stringstream file;
  SaveRrIndex(index, file);
  return file.str();
}

// If loading succeeds despite mutation, the result must be internally
// consistent (every containment entry backed by actual membership). If
// it fails, the typed error must be populated: exactly one non-kNone
// code, a human-readable message, and never the "retryable" lie — a
// mutated byte stream fails identically on every retry.
void CheckConsistentIfLoaded(const SocialNetwork& n, const std::string& bytes) {
  std::stringstream file(bytes);
  IndexIoError error;
  const auto loaded = LoadRrIndex(n, file, &error);
  if (loaded == nullptr) {
    ASSERT_FALSE(error.ok());
    ASSERT_FALSE(error.message.empty());
    ASSERT_FALSE(error.retryable())
        << IndexIoCodeName(error.code) << ": " << error.message;
    return;
  }
  ASSERT_TRUE(error.ok());
  for (VertexId v = 0; v < n.num_vertices(); ++v) {
    for (const uint32_t id : loaded->Containing(v)) {
      ASSERT_LT(id, loaded->num_graphs());
      ASSERT_TRUE(loaded->graph(id).LocalIndex(v).has_value());
    }
  }
}

TEST(IndexIoFuzzTest, SingleBitFlipsNeverCrash) {
  const SocialNetwork n = MakeRunningExample();
  const std::string valid = ValidRrIndexBytes(n);
  Rng rng(11);
  for (int trial = 0; trial < 300; ++trial) {
    std::string bytes = valid;
    const size_t pos = rng.NextBounded(bytes.size());
    bytes[pos] = static_cast<char>(
        bytes[pos] ^ static_cast<char>(1u << rng.NextBounded(8)));
    CheckConsistentIfLoaded(n, bytes);
  }
}

TEST(IndexIoFuzzTest, MultiByteScramblesNeverCrash) {
  const SocialNetwork n = MakeRunningExample();
  const std::string valid = ValidRrIndexBytes(n);
  Rng rng(12);
  for (int trial = 0; trial < 200; ++trial) {
    std::string bytes = valid;
    const size_t count = 1 + rng.NextBounded(16);
    for (size_t i = 0; i < count; ++i) {
      bytes[rng.NextBounded(bytes.size())] =
          static_cast<char>(rng.NextBounded(256));
    }
    std::stringstream file(bytes);
    // Scrambles that miss every meaningful byte can still load; most are
    // rejected by the structural checks or the checksum. Either way: no
    // crash, no inconsistency.
    CheckConsistentIfLoaded(n, bytes);
  }
}

TEST(IndexIoFuzzTest, ArbitraryTruncationsNeverCrash) {
  const SocialNetwork n = MakeRunningExample();
  const std::string valid = ValidRrIndexBytes(n);
  Rng rng(13);
  for (int trial = 0; trial < 200; ++trial) {
    const size_t keep = rng.NextBounded(valid.size());
    std::stringstream file(valid.substr(0, keep));
    // A strict prefix always misses the checksum: must fail cleanly.
    EXPECT_EQ(LoadRrIndex(n, file), nullptr) << "kept " << keep;
  }
}

TEST(IndexIoFuzzTest, RandomGarbageNeverCrashes) {
  const SocialNetwork n = MakeRunningExample();
  Rng rng(14);
  for (int trial = 0; trial < 200; ++trial) {
    std::string bytes(rng.NextBounded(4096), '\0');
    for (char& c : bytes) c = static_cast<char>(rng.NextBounded(256));
    std::stringstream file(bytes);
    EXPECT_EQ(LoadRrIndex(n, file), nullptr);
    std::stringstream file2(bytes);
    EXPECT_EQ(LoadDelayMatIndex(n, file2), nullptr);
  }
}

TEST(IndexIoFuzzTest, DelayMatMutationsNeverCrash) {
  const SocialNetwork n = MakeRunningExample();
  RrIndexOptions options;
  options.theta_override = 500;
  DelayMatIndex index(n, options);
  index.Build();
  std::stringstream file;
  SaveDelayMatIndex(index, file);
  const std::string valid = file.str();

  Rng rng(15);
  for (int trial = 0; trial < 300; ++trial) {
    std::string bytes = valid;
    bytes[rng.NextBounded(bytes.size())] =
        static_cast<char>(rng.NextBounded(256));
    std::stringstream mutated(bytes);
    const auto loaded = LoadDelayMatIndex(n, mutated);
    if (loaded != nullptr) {
      // Survivors must still satisfy the counter invariant.
      for (VertexId v = 0; v < n.num_vertices(); ++v) {
        ASSERT_LE(loaded->CountContaining(v), loaded->theta());
      }
    }
  }
}

}  // namespace
}  // namespace pitex
