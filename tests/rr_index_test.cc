// Tests for IndexEst (Algo 3), IndexEst+ (edge-cut pruning) and DelayMat
// (Algo 4): estimation accuracy against the exact oracle, agreement
// between the three index variants, pruning soundness, and Table-3 style
// size relationships.

#include <gtest/gtest.h>

#include "running_example.h"
#include "src/datasets/synthetic.h"
#include "src/index/delay_mat.h"
#include "src/index/edge_cut.h"
#include "src/index/rr_index.h"
#include "src/sampling/exact.h"

namespace pitex {
namespace {

RrIndexOptions DenseOptions() {
  RrIndexOptions options;
  options.theta_override = 60000;
  options.seed = 5;
  return options;
}

TEST(RrIndexTest, TheoreticalThetaMatchesEq7) {
  RrIndexOptions options;
  options.eps = 0.7;
  options.delta = 1000;
  options.cap_k = 10;
  const double theta = RrIndex::TheoreticalTheta(options, 1000, 50);
  EXPECT_GT(theta, 1000.0);  // far more than |V|
  // Monotone in |V| and cap_k.
  EXPECT_LT(theta, RrIndex::TheoreticalTheta(options, 2000, 50));
  RrIndexOptions bigger_k = options;
  bigger_k.cap_k = 20;
  EXPECT_LT(theta, RrIndex::TheoreticalTheta(bigger_k, 1000, 50));
}

TEST(RrIndexTest, EstimatesMatchExactOnRunningExample) {
  SocialNetwork n = MakeRunningExample();
  RrIndex index(n, DenseOptions());
  index.Build();
  for (TagId a = 0; a < 4; ++a) {
    for (TagId b = a + 1; b < 4; ++b) {
      const TagId tags[] = {a, b};
      const auto post = n.topics.Posterior(tags);
      const PosteriorProbs probs(n.influence, post);
      const double exact = ExactInfluence(n.graph, probs, 0);
      const Estimate est = index.EstimateInfluence(0, probs);
      EXPECT_NEAR(est.influence, exact, 0.06 * exact)
          << "pair " << a << "," << b;
    }
  }
}

TEST(RrIndexTest, ContainingListsConsistent) {
  SocialNetwork n = MakeRunningExample();
  RrIndex index(n, DenseOptions());
  index.Build();
  size_t total = 0;
  for (VertexId v = 0; v < n.num_vertices(); ++v) {
    for (uint32_t id : index.Containing(v)) {
      EXPECT_TRUE(index.graph(id).LocalIndex(v).has_value());
    }
    total += index.CountContaining(v);
  }
  size_t expected = 0;
  for (size_t i = 0; i < index.num_graphs(); ++i) {
    expected += index.graph(i).vertices.size();
  }
  EXPECT_EQ(total, expected);
}

TEST(RrIndexTest, SizeBytesGrowsWithTheta) {
  SocialNetwork n = MakeRunningExample();
  RrIndexOptions small = DenseOptions();
  small.theta_override = 100;
  RrIndexOptions large = DenseOptions();
  large.theta_override = 1000;
  RrIndex a(n, small), b(n, large);
  a.Build();
  b.Build();
  EXPECT_LT(a.SizeBytes(), b.SizeBytes());
}

TEST(PrunedRrIndexTest, AgreesExactlyWithBaseIndex) {
  // IndexEst+ must return the *same* estimate as IndexEst: pruning is
  // lossless (only RR-Graphs whose cut is fully dead are skipped, and
  // those are unreachable anyway).
  SocialNetwork n = MakeRunningExample();
  RrIndex base(n, DenseOptions());
  base.Build();
  PrunedRrIndex pruned(&base, &n.influence);
  for (VertexId u = 0; u < n.num_vertices(); ++u) {
    for (TagId a = 0; a < 4; ++a) {
      for (TagId b = a + 1; b < 4; ++b) {
        const TagId tags[] = {a, b};
        const auto post = n.topics.Posterior(tags);
        const PosteriorProbs probs(n.influence, post);
        const Estimate base_est = base.EstimateInfluence(u, probs);
        const Estimate pruned_est = pruned.EstimateInfluence(u, probs);
        EXPECT_DOUBLE_EQ(base_est.influence, pruned_est.influence)
            << "user " << u << " pair " << a << "," << b;
      }
    }
  }
}

TEST(PrunedRrIndexTest, ActuallyPrunes) {
  SocialNetwork n = MakeRunningExample();
  RrIndex base(n, DenseOptions());
  base.Build();
  PrunedRrIndex pruned(&base, &n.influence);
  // {w1, w2} kills all z3-only edges; many RR-Graphs should be pruned.
  const TagId tags[] = {0, 1};
  const auto post = n.topics.Posterior(tags);
  const PosteriorProbs probs(n.influence, post);
  const Estimate base_est = base.EstimateInfluence(0, probs);
  const Estimate pruned_est = pruned.EstimateInfluence(0, probs);
  EXPECT_GT(pruned.last_stats().pruned, 0u);
  EXPECT_LT(pruned_est.edges_visited, base_est.edges_visited);
}

TEST(PrunedRrIndexTest, AgreesOnSyntheticDataset) {
  SocialNetwork n = GenerateDataset(LastfmSpec(0.15));
  RrIndexOptions options;
  options.theta_override = 5000;
  RrIndex base(n, options);
  base.Build();
  PrunedRrIndex pruned(&base, &n.influence);
  const auto users = SampleUserGroup(n.graph, UserGroup::kHigh, 3, 9);
  Rng rng(11);
  for (VertexId u : users) {
    for (int trial = 0; trial < 5; ++trial) {
      const TagId tags[] = {
          static_cast<TagId>(rng.NextBounded(n.topics.num_tags())),
      };
      const auto post = n.topics.Posterior(tags);
      const PosteriorProbs probs(n.influence, post);
      EXPECT_DOUBLE_EQ(base.EstimateInfluence(u, probs).influence,
                       pruned.EstimateInfluence(u, probs).influence);
    }
  }
}

TEST(PrunedRrIndexTest, AllCutPoliciesAgreeOnEstimates) {
  // Every cut policy is a sound filter: the estimate must be identical for
  // all three; only the amount of pruning differs.
  SocialNetwork n = MakeRunningExample();
  RrIndexOptions options = DenseOptions();
  options.theta_override = 5000;
  RrIndex base(n, options);
  base.Build();
  PrunedRrIndex best(&base, &n.influence, CutPolicy::kBestOfTwo);
  PrunedRrIndex out(&base, &n.influence, CutPolicy::kOutEdges);
  PrunedRrIndex root_in(&base, &n.influence, CutPolicy::kRootInEdges);
  for (VertexId u = 0; u < n.num_vertices(); ++u) {
    for (TagId a = 0; a < 4; ++a) {
      for (TagId b = a + 1; b < 4; ++b) {
        const TagId tags[] = {a, b};
        const auto post = n.topics.Posterior(tags);
        const PosteriorProbs probs(n.influence, post);
        const double expected = best.EstimateInfluence(u, probs).influence;
        EXPECT_DOUBLE_EQ(out.EstimateInfluence(u, probs).influence, expected);
        EXPECT_DOUBLE_EQ(root_in.EstimateInfluence(u, probs).influence,
                         expected);
      }
    }
  }
}

TEST(DelayMatTest, CountsMatchDedicatedIndexDistribution) {
  // theta(u) under DelayMat should match the RR index's counts in
  // expectation (same generation process).
  SocialNetwork n = MakeRunningExample();
  RrIndexOptions options = DenseOptions();
  RrIndex full(n, options);
  full.Build();
  DelayMatIndex delay(n, options);
  delay.Build();
  EXPECT_EQ(full.theta(), delay.theta());
  for (VertexId v = 0; v < n.num_vertices(); ++v) {
    const auto a = static_cast<double>(full.CountContaining(v));
    const auto b = static_cast<double>(delay.CountContaining(v));
    EXPECT_NEAR(a, b, 0.05 * std::max(100.0, std::max(a, b)))
        << "vertex " << v;
  }
}

TEST(DelayMatTest, EstimatesMatchExact) {
  SocialNetwork n = MakeRunningExample();
  RrIndexOptions options = DenseOptions();
  options.theta_override = 40000;
  DelayMatIndex delay(n, options);
  delay.Build();
  for (TagId a = 0; a < 4; ++a) {
    for (TagId b = a + 1; b < 4; ++b) {
      const TagId tags[] = {a, b};
      const auto post = n.topics.Posterior(tags);
      const PosteriorProbs probs(n.influence, post);
      const double exact = ExactInfluence(n.graph, probs, 0);
      const Estimate est = delay.EstimateInfluence(0, probs);
      EXPECT_NEAR(est.influence, exact, 0.08 * exact)
          << "pair " << a << "," << b;
    }
  }
}

TEST(DelayMatTest, IndexFarSmallerThanRRGraphs) {
  // Table 3's key relationship.
  SocialNetwork n = GenerateDataset(LastfmSpec(0.3));
  RrIndexOptions options;
  options.theta_override = 2000;
  RrIndex full(n, options);
  full.Build();
  DelayMatIndex delay(n, options);
  delay.Build();
  EXPECT_LT(delay.SizeBytes() * 10, full.SizeBytes());
}

TEST(DelayMatDeathTest, EstimateBeforeBuildDies) {
  SocialNetwork n = MakeRunningExample();
  DelayMatIndex delay(n, DenseOptions());
  const TopicPosterior post(3, 0.0);
  const PosteriorProbs probs(n.influence, post);
  EXPECT_DEATH(delay.EstimateInfluence(0, probs), "not built");
}

}  // namespace
}  // namespace pitex
