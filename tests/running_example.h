// The paper's running example (Fig. 2) as an exact test fixture.
//
// Seven users u1..u7 (ids 0..6), three topics, four tags. The topology and
// topic labels are reconstructed from the figure and validated against the
// numbers the paper states explicitly:
//   * p(z|{w1,w2}) = (0.5, 0.5, 0.0) and the rest of Fig. 2(b)'s table;
//   * p((u1,u2) | {w1,w2}) = 0.2                         (Example 1);
//   * E[I(u1 | {w1,w2})] = 1.5125                        (Example 1);
//   * the k=2 optimum for u1 is {w3, w4}                 (Example 1);
//   * u3's out-edges go to u4 and u6; u7's in-edges come from u4 and u6
//                                                        (Example 7).

#ifndef PITEX_TESTS_RUNNING_EXAMPLE_H_
#define PITEX_TESTS_RUNNING_EXAMPLE_H_

#include "src/model/influence_graph.h"

namespace pitex {

inline SocialNetwork MakeRunningExample() {
  SocialNetwork network;
  GraphBuilder graph(7);
  // Edge order matters: tests refer to EdgeIds.
  graph.AddEdge(0, 1);  // e0: u1 -> u2, z1:0.4
  graph.AddEdge(0, 2);  // e1: u1 -> u3, z2:0.5 z3:0.5
  graph.AddEdge(2, 3);  // e2: u3 -> u4, z1:0.5
  graph.AddEdge(2, 5);  // e3: u3 -> u6, z3:0.5
  graph.AddEdge(3, 5);  // e4: u4 -> u6, z3:0.8
  graph.AddEdge(3, 6);  // e5: u4 -> u7, z3:0.4
  graph.AddEdge(5, 6);  // e6: u6 -> u7, z3:0.5
  network.graph = graph.Build();

  network.topics = TopicModel(3, 4);
  // Fig. 2(b): p(w_i | z_j).
  const double table[4][3] = {
      {0.6, 0.4, 0.0},  // w1
      {0.4, 0.6, 0.0},  // w2
      {0.0, 0.4, 0.6},  // w3
      {0.0, 0.4, 0.6},  // w4
  };
  for (TagId w = 0; w < 4; ++w) {
    for (TopicId z = 0; z < 3; ++z) {
      network.topics.SetTagTopic(w, z, table[w][z]);
    }
  }

  InfluenceGraphBuilder influence(network.graph.num_edges());
  const auto set1 = [&](EdgeId e, TopicId z, double p) {
    const EdgeTopicEntry entry{z, p};
    influence.SetEdgeTopics(e, std::span(&entry, 1));
  };
  set1(0, 0, 0.4);
  {
    const EdgeTopicEntry entries[] = {{1, 0.5}, {2, 0.5}};
    influence.SetEdgeTopics(1, entries);
  }
  set1(2, 0, 0.5);
  set1(3, 2, 0.5);
  set1(4, 2, 0.8);
  set1(5, 2, 0.4);
  set1(6, 2, 0.5);
  network.influence = influence.Build();

  network.tags.Intern("w1");
  network.tags.Intern("w2");
  network.tags.Intern("w3");
  network.tags.Intern("w4");
  return network;
}

}  // namespace pitex

#endif  // PITEX_TESTS_RUNNING_EXAMPLE_H_
