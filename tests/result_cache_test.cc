// Tests for the serving-layer result cache (src/serve/result_cache.h):
// hit/miss behavior, LRU eviction per shard, epoch keying, counters, and
// concurrent access.

#include "src/serve/result_cache.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace pitex {
namespace {

std::vector<RankedTagSet> MakeRanking(TagId tag, double influence) {
  return {RankedTagSet{{tag}, influence}};
}

ResultCacheKey MakeKey(VertexId user, uint64_t epoch = 1) {
  ResultCacheKey key;
  key.user = user;
  key.k = 2;
  key.top_n = 1;
  key.method = 4;
  key.epoch = epoch;
  return key;
}

TEST(ResultCacheTest, MissThenHit) {
  ResultCache cache(16, 2);
  std::vector<RankedTagSet> out;
  EXPECT_FALSE(cache.Lookup(MakeKey(1), &out));
  cache.Insert(MakeKey(1), MakeRanking(7, 3.5));
  ASSERT_TRUE(cache.Lookup(MakeKey(1), &out));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].tags, std::vector<TagId>{7});
  EXPECT_DOUBLE_EQ(out[0].influence, 3.5);

  const ResultCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(ResultCacheTest, EpochIsPartOfTheKey) {
  ResultCache cache(16, 1);
  cache.Insert(MakeKey(1, /*epoch=*/1), MakeRanking(7, 3.5));
  std::vector<RankedTagSet> out;
  // Same user, newer index epoch: a different answer space entirely.
  EXPECT_FALSE(cache.Lookup(MakeKey(1, /*epoch=*/2), &out));
  EXPECT_TRUE(cache.Lookup(MakeKey(1, /*epoch=*/1), &out));
}

TEST(ResultCacheTest, LruEvictsTheColdestEntry) {
  // One shard, three slots: inserting a fourth evicts the LRU entry.
  ResultCache cache(3, 1);
  cache.Insert(MakeKey(1), MakeRanking(1, 1.0));
  cache.Insert(MakeKey(2), MakeRanking(2, 2.0));
  cache.Insert(MakeKey(3), MakeRanking(3, 3.0));
  std::vector<RankedTagSet> out;
  // Touch key 1 so key 2 becomes the coldest.
  ASSERT_TRUE(cache.Lookup(MakeKey(1), &out));
  cache.Insert(MakeKey(4), MakeRanking(4, 4.0));
  EXPECT_TRUE(cache.Lookup(MakeKey(1), &out));
  EXPECT_FALSE(cache.Lookup(MakeKey(2), &out));
  EXPECT_TRUE(cache.Lookup(MakeKey(3), &out));
  EXPECT_TRUE(cache.Lookup(MakeKey(4), &out));
  EXPECT_EQ(cache.GetStats().evictions, 1u);
  EXPECT_EQ(cache.GetStats().entries, 3u);
}

TEST(ResultCacheTest, ReinsertRefreshesInsteadOfDuplicating) {
  ResultCache cache(4, 1);
  cache.Insert(MakeKey(1), MakeRanking(1, 1.0));
  cache.Insert(MakeKey(1), MakeRanking(9, 9.0));
  std::vector<RankedTagSet> out;
  ASSERT_TRUE(cache.Lookup(MakeKey(1), &out));
  EXPECT_DOUBLE_EQ(out[0].influence, 9.0);
  EXPECT_EQ(cache.GetStats().entries, 1u);
}

TEST(ResultCacheTest, ZeroCapacityDisables) {
  ResultCache cache(0, 4);
  EXPECT_FALSE(cache.enabled());
  cache.Insert(MakeKey(1), MakeRanking(1, 1.0));
  std::vector<RankedTagSet> out;
  EXPECT_FALSE(cache.Lookup(MakeKey(1), &out));
  EXPECT_EQ(cache.GetStats().entries, 0u);
}

TEST(ResultCacheTest, ConcurrentMixedWorkload) {
  ResultCache cache(128, 8);
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      std::vector<RankedTagSet> out;
      for (int i = 0; i < kOpsPerThread; ++i) {
        const auto user = static_cast<VertexId>((t * 31 + i) % 64);
        if (cache.Lookup(MakeKey(user), &out)) {
          // Cached rankings must always be well-formed.
          ASSERT_EQ(out.size(), 1u);
          ASSERT_EQ(out[0].tags.size(), 1u);
          ASSERT_EQ(out[0].tags[0], static_cast<TagId>(user % 8));
        } else {
          cache.Insert(MakeKey(user),
                       MakeRanking(static_cast<TagId>(user % 8), 1.0));
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const ResultCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<uint64_t>(kThreads) * kOpsPerThread);
  EXPECT_LE(stats.entries, 128u + 8u);  // per-shard ceil rounding slack
}

}  // namespace
}  // namespace pitex
