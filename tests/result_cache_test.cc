// Tests for the serving-layer result cache (src/serve/result_cache.h):
// hit/miss behavior, LRU eviction per shard, epoch keying, counters,
// concurrent access (including epoch churn), and the shard-lock fail
// point.

#include "src/serve/result_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "src/util/failpoint.h"

namespace pitex {
namespace {

std::vector<RankedTagSet> MakeRanking(TagId tag, double influence) {
  return {RankedTagSet{{tag}, influence}};
}

ResultCacheKey MakeKey(VertexId user, uint64_t epoch = 1) {
  ResultCacheKey key;
  key.user = user;
  key.k = 2;
  key.top_n = 1;
  key.method = 4;
  key.epoch = epoch;
  return key;
}

TEST(ResultCacheTest, MissThenHit) {
  ResultCache cache(16, 2);
  std::vector<RankedTagSet> out;
  EXPECT_FALSE(cache.Lookup(MakeKey(1), &out));
  cache.Insert(MakeKey(1), MakeRanking(7, 3.5));
  ASSERT_TRUE(cache.Lookup(MakeKey(1), &out));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].tags, std::vector<TagId>{7});
  EXPECT_DOUBLE_EQ(out[0].influence, 3.5);

  const ResultCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(ResultCacheTest, EpochIsPartOfTheKey) {
  ResultCache cache(16, 1);
  cache.Insert(MakeKey(1, /*epoch=*/1), MakeRanking(7, 3.5));
  std::vector<RankedTagSet> out;
  // Same user, newer index epoch: a different answer space entirely.
  EXPECT_FALSE(cache.Lookup(MakeKey(1, /*epoch=*/2), &out));
  EXPECT_TRUE(cache.Lookup(MakeKey(1, /*epoch=*/1), &out));
}

TEST(ResultCacheTest, LruEvictsTheColdestEntry) {
  // One shard, three slots: inserting a fourth evicts the LRU entry.
  ResultCache cache(3, 1);
  cache.Insert(MakeKey(1), MakeRanking(1, 1.0));
  cache.Insert(MakeKey(2), MakeRanking(2, 2.0));
  cache.Insert(MakeKey(3), MakeRanking(3, 3.0));
  std::vector<RankedTagSet> out;
  // Touch key 1 so key 2 becomes the coldest.
  ASSERT_TRUE(cache.Lookup(MakeKey(1), &out));
  cache.Insert(MakeKey(4), MakeRanking(4, 4.0));
  EXPECT_TRUE(cache.Lookup(MakeKey(1), &out));
  EXPECT_FALSE(cache.Lookup(MakeKey(2), &out));
  EXPECT_TRUE(cache.Lookup(MakeKey(3), &out));
  EXPECT_TRUE(cache.Lookup(MakeKey(4), &out));
  EXPECT_EQ(cache.GetStats().evictions, 1u);
  EXPECT_EQ(cache.GetStats().entries, 3u);
}

TEST(ResultCacheTest, ReinsertRefreshesInsteadOfDuplicating) {
  ResultCache cache(4, 1);
  cache.Insert(MakeKey(1), MakeRanking(1, 1.0));
  cache.Insert(MakeKey(1), MakeRanking(9, 9.0));
  std::vector<RankedTagSet> out;
  ASSERT_TRUE(cache.Lookup(MakeKey(1), &out));
  EXPECT_DOUBLE_EQ(out[0].influence, 9.0);
  EXPECT_EQ(cache.GetStats().entries, 1u);
}

TEST(ResultCacheTest, ZeroCapacityDisables) {
  ResultCache cache(0, 4);
  EXPECT_FALSE(cache.enabled());
  cache.Insert(MakeKey(1), MakeRanking(1, 1.0));
  std::vector<RankedTagSet> out;
  EXPECT_FALSE(cache.Lookup(MakeKey(1), &out));
  EXPECT_EQ(cache.GetStats().entries, 0u);
}

TEST(ResultCacheTest, ConcurrentMixedWorkload) {
  ResultCache cache(128, 8);
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      std::vector<RankedTagSet> out;
      for (int i = 0; i < kOpsPerThread; ++i) {
        const auto user = static_cast<VertexId>((t * 31 + i) % 64);
        if (cache.Lookup(MakeKey(user), &out)) {
          // Cached rankings must always be well-formed.
          ASSERT_EQ(out.size(), 1u);
          ASSERT_EQ(out[0].tags.size(), 1u);
          ASSERT_EQ(out[0].tags[0], static_cast<TagId>(user % 8));
        } else {
          cache.Insert(MakeKey(user),
                       MakeRanking(static_cast<TagId>(user % 8), 1.0));
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const ResultCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<uint64_t>(kThreads) * kOpsPerThread);
  EXPECT_LE(stats.entries, 128u + 8u);  // per-shard ceil rounding slack
}

TEST(ResultCacheTest, EvictionUnderConcurrentEpochChurn) {
  // Readers and writers chase an advancing epoch through a cache small
  // enough to evict constantly. Old-epoch entries must age out (bounded
  // residency), hits must only ever return the ranking inserted for
  // exactly that (user, epoch), and counters must stay conserved.
  ResultCache cache(32, 4);
  std::atomic<uint64_t> epoch{1};
  std::atomic<bool> done{false};

  std::thread churner([&epoch, &done] {
    for (int e = 2; e <= 40; ++e) {
      epoch.store(static_cast<uint64_t>(e), std::memory_order_release);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    done.store(true, std::memory_order_release);
  });

  constexpr int kThreads = 4;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&cache, &epoch, &done, t] {
      std::vector<RankedTagSet> out;
      uint64_t i = 0;
      while (!done.load(std::memory_order_acquire)) {
        const uint64_t e = epoch.load(std::memory_order_acquire);
        const auto user = static_cast<VertexId>((t * 17 + i) % 24);
        if (cache.Lookup(MakeKey(user, e), &out)) {
          // A hit must carry the payload inserted for this epoch: the
          // tag encodes (user, epoch), so stale or crossed entries are
          // detected immediately.
          ASSERT_EQ(out.size(), 1u);
          ASSERT_EQ(out[0].tags[0],
                    static_cast<TagId>((user + e) % 97));
        } else {
          cache.Insert(MakeKey(user, e),
                       MakeRanking(static_cast<TagId>((user + e) % 97),
                                   static_cast<double>(e)));
        }
        ++i;
      }
    });
  }
  churner.join();
  for (std::thread& worker : workers) worker.join();

  const ResultCache::Stats stats = cache.GetStats();
  // The capacity bound held despite 40 epochs x 24 users of key churn.
  EXPECT_LE(stats.entries, 32u + 4u);  // per-shard ceil rounding slack
  EXPECT_GT(stats.evictions, 0u);
  // Conservation: every insertion either still resides or was evicted.
  EXPECT_EQ(stats.insertions, stats.evictions + stats.entries);
}

TEST(ResultCacheTest, ShardLockFailpointForcesMissAndDropsInsert) {
#if !PITEX_FAILPOINTS_ENABLED
  GTEST_SKIP() << "fail points compiled out (-DPITEX_FAILPOINTS=OFF)";
#endif
  FailpointRegistry::Instance().DisableAll();
  ResultCache cache(16, 2);
  cache.Insert(MakeKey(1), MakeRanking(7, 3.5));

  FailpointConfig config;
  config.mode = FailpointMode::kError;
  FailpointRegistry::Instance().Enable("result_cache/shard_lock", config);

  // A "failed" shard lock degrades to a miss -- the caller recomputes --
  // and a dropped insert -- the caller's answer is still delivered.
  std::vector<RankedTagSet> out;
  EXPECT_FALSE(cache.Lookup(MakeKey(1), &out));
  cache.Insert(MakeKey(2), MakeRanking(9, 9.0));

  FailpointRegistry::Instance().DisableAll();
  // The pre-fault entry survived; the faulted insert never landed.
  EXPECT_TRUE(cache.Lookup(MakeKey(1), &out));
  EXPECT_FALSE(cache.Lookup(MakeKey(2), &out));
}

}  // namespace
}  // namespace pitex
