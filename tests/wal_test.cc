// WriteAheadLog + checkpoint manifest unit tests: append/read
// roundtrips, segment rotation and truncation, the torn-tail rule at
// every byte offset, mid-log corruption refusal, fail-point rollback
// semantics, and crash-atomic manifest replacement. The full-process
// kill-9 drills live in tests/crash_recovery_test.cc; this suite pins
// the byte-level contracts those drills rely on.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "src/serve/recovery.h"
#include "src/serve/wal.h"
#include "src/util/failpoint.h"

namespace pitex {
namespace {

namespace fs = std::filesystem;

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FailpointRegistry::Instance().DisableAll();
    dir_ = (fs::temp_directory_path() /
            ("pitex_wal_test_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
    fs::remove_all(dir_);
  }
  void TearDown() override {
    FailpointRegistry::Instance().DisableAll();
    fs::remove_all(dir_);
  }

  static EdgeInfluenceUpdate MakeUpdate(uint32_t salt) {
    EdgeInfluenceUpdate update;
    update.edge = salt % 17;
    update.entries = {{salt % 3, 0.125 * static_cast<double>(salt % 8)},
                      {(salt + 1) % 3, 0.5}};
    return update;
  }

  static std::vector<EdgeInfluenceUpdate> MakeBatch(uint32_t salt,
                                                    size_t size = 2) {
    std::vector<EdgeInfluenceUpdate> batch;
    for (size_t i = 0; i < size; ++i) {
      batch.push_back(MakeUpdate(salt + static_cast<uint32_t>(i) * 7));
    }
    return batch;
  }

  static void ExpectBatchEq(const std::vector<EdgeInfluenceUpdate>& got,
                            const std::vector<EdgeInfluenceUpdate>& want) {
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].edge, want[i].edge);
      ASSERT_EQ(got[i].entries.size(), want[i].entries.size());
      for (size_t j = 0; j < got[i].entries.size(); ++j) {
        EXPECT_EQ(got[i].entries[j].topic, want[i].entries[j].topic);
        EXPECT_EQ(got[i].entries[j].prob, want[i].entries[j].prob);
      }
    }
  }

  std::string dir_;
};

TEST_F(WalTest, AppendSyncReadRoundTrip) {
  std::string error;
  auto wal = WriteAheadLog::Open(dir_, 1, WalOptions{}, &error);
  ASSERT_NE(wal, nullptr) << error;

  std::vector<std::vector<EdgeInfluenceUpdate>> batches;
  for (uint32_t i = 0; i < 5; ++i) {
    batches.push_back(MakeBatch(i * 11, 1 + i % 3));
    EXPECT_EQ(wal->Append(batches.back()), static_cast<uint64_t>(i + 1));
    ASSERT_TRUE(wal->Sync());
  }
  EXPECT_EQ(wal->next_lsn(), 6u);
  EXPECT_EQ(wal->appends(), 5u);
  EXPECT_GT(wal->fsyncs(), 0u);
  wal.reset();

  std::vector<WalRecord> records;
  const WalReadResult read = ReadWalAfter(dir_, 0, &records);
  ASSERT_TRUE(read.ok()) << read.message;
  EXPECT_EQ(read.status, WalReadStatus::kOk);
  ASSERT_EQ(records.size(), 5u);
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].lsn, static_cast<uint64_t>(i + 1));
    ExpectBatchEq(records[i].updates, batches[i]);
  }

  // after_lsn filters the checkpointed prefix out.
  records.clear();
  ASSERT_TRUE(ReadWalAfter(dir_, 3, &records).ok());
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].lsn, 4u);
  EXPECT_EQ(records[1].lsn, 5u);

  // An absent directory is an empty log, not an error.
  records.clear();
  const WalReadResult absent = ReadWalAfter(dir_ + ".nope", 0, &records);
  EXPECT_EQ(absent.status, WalReadStatus::kOk);
  EXPECT_TRUE(records.empty());
}

TEST_F(WalTest, GroupCommitMakesWholeGroupsDurable) {
  std::string error;
  auto wal = WriteAheadLog::Open(dir_, 1, WalOptions{}, &error);
  ASSERT_NE(wal, nullptr) << error;

  // Three appends, one Sync: one commit point for the whole group.
  const auto b1 = MakeBatch(1), b2 = MakeBatch(2), b3 = MakeBatch(3);
  EXPECT_EQ(wal->Append(b1), 1u);
  EXPECT_EQ(wal->Append(b2), 2u);
  EXPECT_EQ(wal->Append(b3), 3u);
  const uint64_t fsyncs_before = wal->fsyncs();
  ASSERT_TRUE(wal->Sync());
  EXPECT_EQ(wal->fsyncs(), fsyncs_before + 1);
  wal.reset();

  std::vector<WalRecord> records;
  ASSERT_TRUE(ReadWalAfter(dir_, 0, &records).ok());
  EXPECT_EQ(records.size(), 3u);
}

TEST_F(WalTest, RotationSpansSegmentsAndTruncateThroughDeletesThem) {
  WalOptions options;
  options.segment_bytes = 1;  // rotate at every commit boundary
  std::string error;
  auto wal = WriteAheadLog::Open(dir_, 1, options, &error);
  ASSERT_NE(wal, nullptr) << error;
  for (uint32_t i = 0; i < 6; ++i) {
    ASSERT_EQ(wal->Append(MakeBatch(i)), static_cast<uint64_t>(i + 1));
    ASSERT_TRUE(wal->Sync());
  }

  size_t segment_count = 0;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    if (entry.path().filename().string().rfind("wal-", 0) == 0) {
      ++segment_count;
    }
  }
  EXPECT_GE(segment_count, 3u);  // the log really did rotate

  std::vector<WalRecord> records;
  ASSERT_TRUE(ReadWalAfter(dir_, 0, &records).ok());
  ASSERT_EQ(records.size(), 6u);
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].lsn, static_cast<uint64_t>(i + 1));
  }

  // Truncation through LSN 4 must drop only segments every record of
  // which is <= 4, keep everything after, and never touch the active
  // segment.
  wal->TruncateThrough(4);
  records.clear();
  const WalReadResult read = ReadWalAfter(dir_, 4, &records);
  ASSERT_TRUE(read.ok()) << read.message;
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].lsn, 5u);
  EXPECT_EQ(records[1].lsn, 6u);

  // The truncated log still appends and reads coherently.
  ASSERT_EQ(wal->Append(MakeBatch(99)), 7u);
  ASSERT_TRUE(wal->Sync());
  wal.reset();
  records.clear();
  ASSERT_TRUE(ReadWalAfter(dir_, 4, &records).ok());
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records.back().lsn, 7u);
}

TEST_F(WalTest, TornTailAtEveryByteOffsetReadsAsPrefix) {
  // Write a known log, then replay recovery against every possible
  // torn-write length: a crash can stop the final write(2) at any byte,
  // and every such file must read as SOME prefix of the committed
  // history -- never an error, never a record that was not written.
  std::string error;
  auto wal = WriteAheadLog::Open(dir_, 1, WalOptions{}, &error);
  ASSERT_NE(wal, nullptr) << error;
  for (uint32_t i = 0; i < 3; ++i) {
    ASSERT_NE(wal->Append(MakeBatch(i * 5)), 0u);
    ASSERT_TRUE(wal->Sync());
  }
  wal.reset();

  const std::string segment = dir_ + "/" + WalSegmentName(1);
  std::string bytes;
  {
    std::ifstream in(segment, std::ios::binary);
    ASSERT_TRUE(in);
    std::ostringstream buf;
    buf << in.rdbuf();
    bytes = buf.str();
  }

  size_t torn_tails = 0;
  for (size_t cut = 0; cut <= bytes.size(); ++cut) {
    {
      std::ofstream out(segment, std::ios::binary | std::ios::trunc);
      out.write(bytes.data(), static_cast<std::streamsize>(cut));
    }
    std::vector<WalRecord> records;
    const WalReadResult read = ReadWalAfter(dir_, 0, &records);
    ASSERT_TRUE(read.ok()) << "cut at byte " << cut << ": " << read.message;
    if (read.status == WalReadStatus::kTornTail) ++torn_tails;
    ASSERT_LE(records.size(), 3u) << "cut at byte " << cut;
    for (size_t i = 0; i < records.size(); ++i) {
      ASSERT_EQ(records[i].lsn, static_cast<uint64_t>(i + 1))
          << "cut at byte " << cut;
    }
  }
  EXPECT_GT(torn_tails, 0u);  // mid-record cuts really exercised the rule
}

TEST_F(WalTest, MidLogDamageIsRefusedAsCorrupt) {
  std::string error;
  auto wal = WriteAheadLog::Open(dir_, 1, WalOptions{}, &error);
  ASSERT_NE(wal, nullptr) << error;
  for (uint32_t i = 0; i < 3; ++i) {
    ASSERT_NE(wal->Append(MakeBatch(i)), 0u);
    ASSERT_TRUE(wal->Sync());
  }
  wal.reset();

  // Flip one payload byte in the middle of the log (well after the
  // header, well before the final record): a complete record now fails
  // its checksum with further data behind it -- bit rot, not a torn
  // tail. Recovery must refuse rather than guess.
  const std::string segment = dir_ + "/" + WalSegmentName(1);
  std::string bytes;
  {
    std::ifstream in(segment, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    bytes = buf.str();
  }
  bytes[bytes.size() / 3] = static_cast<char>(bytes[bytes.size() / 3] ^ 0x40);
  {
    std::ofstream out(segment, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  std::vector<WalRecord> records;
  const WalReadResult read = ReadWalAfter(dir_, 0, &records);
  EXPECT_EQ(read.status, WalReadStatus::kCorrupt) << read.message;
}

TEST_F(WalTest, LogStartingPastCheckpointIsRefused) {
  std::string error;
  auto wal = WriteAheadLog::Open(dir_, /*next_lsn=*/10, WalOptions{}, &error);
  ASSERT_NE(wal, nullptr) << error;
  ASSERT_EQ(wal->Append(MakeBatch(0)), 10u);
  ASSERT_TRUE(wal->Sync());
  wal.reset();

  // A reader resuming from LSN 5 needs records 6..9 -- they are gone.
  std::vector<WalRecord> records;
  EXPECT_EQ(ReadWalAfter(dir_, 5, &records).status, WalReadStatus::kCorrupt);
  // Resuming from 9 anchors exactly at the first segment: fine.
  records.clear();
  ASSERT_TRUE(ReadWalAfter(dir_, 9, &records).ok());
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].lsn, 10u);
}

TEST_F(WalTest, SupersededTornTailInOlderSegmentIsConsumed) {
  // Crash-restart-crash shape: segment A ends in a torn record, and a
  // later writer (post-recovery) opened segment B anchored exactly at
  // the first uncommitted LSN. The torn bytes in A are superseded
  // history and must be consumed -- a second recovery may not report
  // corruption.
  std::string error;
  auto wal = WriteAheadLog::Open(dir_, 1, WalOptions{}, &error);
  ASSERT_NE(wal, nullptr) << error;
  ASSERT_EQ(wal->Append(MakeBatch(1)), 1u);
  ASSERT_EQ(wal->Append(MakeBatch(2)), 2u);
  ASSERT_TRUE(wal->Sync());
  ASSERT_EQ(wal->Append(MakeBatch(3)), 3u);  // appended, never committed
  wal.reset();  // bytes of record 3 are in the file

  // Tear record 3: chop the last byte of the segment.
  const std::string segment = dir_ + "/" + WalSegmentName(1);
  fs::resize_file(segment, fs::file_size(segment) - 1);

  // First recovery sees the torn tail...
  std::vector<WalRecord> records;
  WalReadResult read = ReadWalAfter(dir_, 0, &records);
  ASSERT_EQ(read.status, WalReadStatus::kTornTail) << read.message;
  ASSERT_EQ(records.size(), 2u);

  // ...reopens at LSN 3 (a fresh segment), commits new history...
  wal = WriteAheadLog::Open(dir_, 3, WalOptions{}, &error);
  ASSERT_NE(wal, nullptr) << error;
  ASSERT_EQ(wal->Append(MakeBatch(4)), 3u);
  ASSERT_TRUE(wal->Sync());
  wal.reset();

  // ...and a SECOND recovery must read 1, 2, 3 cleanly across both
  // segments, consuming A's superseded torn bytes.
  records.clear();
  read = ReadWalAfter(dir_, 0, &records);
  ASSERT_TRUE(read.ok()) << read.message;
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[2].lsn, 3u);
}

TEST_F(WalTest, AppendFailpointRejectsWithoutConsumingLsn) {
#if !PITEX_FAILPOINTS_ENABLED
  GTEST_SKIP() << "fail points compiled out (-DPITEX_FAILPOINTS=OFF)";
#endif
  std::string error;
  auto wal = WriteAheadLog::Open(dir_, 1, WalOptions{}, &error);
  ASSERT_NE(wal, nullptr) << error;
  ASSERT_EQ(wal->Append(MakeBatch(1)), 1u);
  ASSERT_TRUE(wal->Sync());

  FailpointConfig config;
  config.mode = FailpointMode::kError;
  config.fires = 1;
  FailpointRegistry::Instance().Enable("wal/append", config);
  EXPECT_EQ(wal->Append(MakeBatch(2)), 0u);  // injected failure
  FailpointRegistry::Instance().DisableAll();

  // The LSN was not consumed; the log holds no trace of the failure.
  EXPECT_EQ(wal->Append(MakeBatch(3)), 2u);
  ASSERT_TRUE(wal->Sync());
  wal.reset();
  std::vector<WalRecord> records;
  ASSERT_TRUE(ReadWalAfter(dir_, 0, &records).ok());
  ASSERT_EQ(records.size(), 2u);
  ExpectBatchEq(records[1].updates, MakeBatch(3));
}

TEST_F(WalTest, SyncFailpointRollsTheUncommittedGroupBack) {
#if !PITEX_FAILPOINTS_ENABLED
  GTEST_SKIP() << "fail points compiled out (-DPITEX_FAILPOINTS=OFF)";
#endif
  std::string error;
  auto wal = WriteAheadLog::Open(dir_, 1, WalOptions{}, &error);
  ASSERT_NE(wal, nullptr) << error;
  ASSERT_EQ(wal->Append(MakeBatch(1)), 1u);
  ASSERT_TRUE(wal->Sync());

  // A whole group dies at its commit point: every record of the group
  // must be truncated back out and the LSN cursor rewound.
  ASSERT_EQ(wal->Append(MakeBatch(2)), 2u);
  ASSERT_EQ(wal->Append(MakeBatch(3)), 3u);
  FailpointConfig config;
  config.mode = FailpointMode::kError;
  config.fires = 1;
  FailpointRegistry::Instance().Enable("wal/fsync", config);
  EXPECT_FALSE(wal->Sync());
  FailpointRegistry::Instance().DisableAll();
  EXPECT_EQ(wal->next_lsn(), 2u);  // rewound

  // Retrying the batch reuses LSN 2 and commits cleanly.
  ASSERT_EQ(wal->Append(MakeBatch(2)), 2u);
  ASSERT_TRUE(wal->Sync());
  wal.reset();
  std::vector<WalRecord> records;
  const WalReadResult read = ReadWalAfter(dir_, 0, &records);
  ASSERT_TRUE(read.ok()) << read.message;
  EXPECT_EQ(read.status, WalReadStatus::kOk);  // no torn garbage left
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[1].lsn, 2u);
  ExpectBatchEq(records[1].updates, MakeBatch(2));
}

TEST_F(WalTest, ManifestRoundTripAndAtomicReplace) {
  fs::create_directories(dir_);
  bool present = true;
  CheckpointManifest read_back;
  std::string error;
  // Absent manifest: present=false, success.
  ASSERT_TRUE(ReadCheckpointManifest(dir_, &read_back, &present, &error));
  EXPECT_FALSE(present);

  CheckpointManifest manifest;
  manifest.lsn = 42;
  manifest.epoch = 7;
  manifest.index_version = 99;
  manifest.snapshot_file = "checkpoint-000000000000002a.rridx";
  manifest.model_delta = MakeBatch(5, 3);
  ASSERT_TRUE(WriteCheckpointManifest(dir_, manifest, &error)) << error;

  ASSERT_TRUE(ReadCheckpointManifest(dir_, &read_back, &present, &error))
      << error;
  ASSERT_TRUE(present);
  EXPECT_EQ(read_back.lsn, 42u);
  EXPECT_EQ(read_back.epoch, 7u);
  EXPECT_EQ(read_back.index_version, 99u);
  EXPECT_EQ(read_back.snapshot_file, manifest.snapshot_file);
  ExpectBatchEq(read_back.model_delta, manifest.model_delta);

#if PITEX_FAILPOINTS_ENABLED
  // A failure between staging and rename leaves the OLD manifest
  // authoritative and no temp litter behind.
  CheckpointManifest newer = manifest;
  newer.lsn = 50;
  FailpointConfig config;
  config.mode = FailpointMode::kError;
  config.fires = 1;
  FailpointRegistry::Instance().Enable("checkpoint/rename", config);
  EXPECT_FALSE(WriteCheckpointManifest(dir_, newer, &error));
  FailpointRegistry::Instance().DisableAll();
  ASSERT_TRUE(ReadCheckpointManifest(dir_, &read_back, &present, &error));
  ASSERT_TRUE(present);
  EXPECT_EQ(read_back.lsn, 42u);  // the old manifest survived intact
  for (const auto& entry : fs::directory_iterator(dir_)) {
    EXPECT_EQ(entry.path().extension(), "")
        << "temp litter: " << entry.path();
  }
#endif

  // A corrupt manifest (flipped byte) is an error, not "absent".
  const std::string path = dir_ + "/CHECKPOINT";
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    bytes = buf.str();
  }
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 1);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  EXPECT_FALSE(ReadCheckpointManifest(dir_, &read_back, &present, &error));
  EXPECT_FALSE(error.empty());
}

TEST_F(WalTest, RetentionHoldsTrackTheMinimumAcrossConsumers) {
  WalRetentionHolds holds;
  EXPECT_EQ(holds.Floor(), UINT64_MAX);  // unconstrained
  const uint64_t a = holds.Register(10);
  const uint64_t b = holds.Register(4);
  EXPECT_NE(a, 0u);
  EXPECT_NE(a, b);
  EXPECT_EQ(holds.Floor(), 4u);
  holds.Update(b, 25);  // advancing past the other hold exposes it
  EXPECT_EQ(holds.Floor(), 10u);
  holds.Update(a, 2);  // rewinding (a resyncing follower) is legal
  EXPECT_EQ(holds.Floor(), 2u);
  holds.Release(a);
  EXPECT_EQ(holds.Floor(), 25u);
  holds.Update(a, 1);  // stale id after release: ignored
  EXPECT_EQ(holds.Floor(), 25u);
  holds.Release(b);
  EXPECT_EQ(holds.Floor(), UINT64_MAX);
}

TEST_F(WalTest, RetentionHoldCapsTruncateThrough) {
  // The truncation/shipping race fix: a checkpoint may move past a
  // lagging follower, but TruncateThrough must never delete a record a
  // registered hold still needs — otherwise the follower is stranded
  // (ReadWalAfter refuses a log that starts past its cursor).
  WalOptions options;
  options.segment_bytes = 1;  // rotate at every commit boundary
  std::string error;
  auto wal = WriteAheadLog::Open(dir_, 1, options, &error);
  ASSERT_NE(wal, nullptr) << error;
  for (uint32_t i = 0; i < 6; ++i) {
    ASSERT_EQ(wal->Append(MakeBatch(i)), static_cast<uint64_t>(i + 1));
    ASSERT_TRUE(wal->Sync());
  }

  // A consumer still needs LSN 3: truncation through 5 may only drop
  // records 1..2 no matter what the checkpoint says.
  const uint64_t hold = wal->retention().Register(3);
  wal->TruncateThrough(5);
  std::vector<WalRecord> records;
  ASSERT_TRUE(ReadWalAfter(dir_, 2, &records).ok());
  ASSERT_GE(records.size(), 4u);
  EXPECT_EQ(records.front().lsn, 3u);
  EXPECT_EQ(records.back().lsn, 6u);

  // A hold at 1 (nothing shipped yet) retains the whole log.
  const uint64_t everything = wal->retention().Register(1);
  wal->TruncateThrough(6);
  records.clear();
  ASSERT_TRUE(ReadWalAfter(dir_, 2, &records).ok());
  EXPECT_EQ(records.front().lsn, 3u);  // still there

  // Holds advanced past the checkpoint stop constraining it.
  wal->retention().Update(hold, 6);
  wal->retention().Update(everything, 7);
  wal->TruncateThrough(5);
  records.clear();
  ASSERT_TRUE(ReadWalAfter(dir_, 5, &records).ok());
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records.front().lsn, 6u);

  // Released holds lift the cap entirely.
  wal->retention().Release(hold);
  wal->retention().Release(everything);
  wal->TruncateThrough(5);
  records.clear();
  ASSERT_TRUE(ReadWalAfter(dir_, 5, &records).ok());
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records.front().lsn, 6u);
}

}  // namespace
}  // namespace pitex
