#include "src/graph/graph.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

namespace pitex {
namespace {

Graph Diamond() {
  // 0 -> {1, 2} -> 3
  GraphBuilder b(4);
  b.AddEdge(0, 1);
  b.AddEdge(0, 2);
  b.AddEdge(1, 3);
  b.AddEdge(2, 3);
  return b.Build();
}

TEST(GraphTest, EmptyGraph) {
  GraphBuilder b(3);
  Graph g = b.Build();
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_TRUE(g.OutEdges(0).empty());
  EXPECT_TRUE(g.InEdges(2).empty());
}

TEST(GraphTest, SizesAndDegrees) {
  Graph g = Diamond();
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.OutDegree(0), 2u);
  EXPECT_EQ(g.OutDegree(3), 0u);
  EXPECT_EQ(g.InDegree(3), 2u);
  EXPECT_EQ(g.InDegree(0), 0u);
}

TEST(GraphTest, EdgeIdsAreInsertionOrder) {
  Graph g = Diamond();
  EXPECT_EQ(g.Tail(0), 0u);
  EXPECT_EQ(g.Head(0), 1u);
  EXPECT_EQ(g.Tail(3), 2u);
  EXPECT_EQ(g.Head(3), 3u);
}

TEST(GraphTest, OutAdjacencyMatchesEdges) {
  Graph g = Diamond();
  std::set<VertexId> heads;
  for (const auto& [v, e] : g.OutEdges(0)) {
    heads.insert(v);
    EXPECT_EQ(g.Tail(e), 0u);
    EXPECT_EQ(g.Head(e), v);
  }
  EXPECT_EQ(heads, (std::set<VertexId>{1, 2}));
}

TEST(GraphTest, InAdjacencyMatchesEdges) {
  Graph g = Diamond();
  std::set<VertexId> tails;
  for (const auto& [v, e] : g.InEdges(3)) {
    tails.insert(v);
    EXPECT_EQ(g.Head(e), 3u);
    EXPECT_EQ(g.Tail(e), v);
  }
  EXPECT_EQ(tails, (std::set<VertexId>{1, 2}));
}

TEST(GraphTest, InOutEdgeIdsAgree) {
  Graph g = Diamond();
  // Every edge id appearing in out-adjacency appears exactly once in the
  // in-adjacency of its head.
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (const auto& [w, e] : g.OutEdges(v)) {
      int found = 0;
      for (const auto& [t, e2] : g.InEdges(w)) found += (e2 == e);
      EXPECT_EQ(found, 1);
    }
  }
}

TEST(GraphTest, ParallelEdgesKept) {
  GraphBuilder b(2);
  b.AddEdge(0, 1);
  b.AddEdge(0, 1);
  Graph g = b.Build();
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.OutDegree(0), 2u);
  EXPECT_EQ(g.InDegree(1), 2u);
}

TEST(GraphTest, AverageDegree) {
  Graph g = Diamond();
  EXPECT_DOUBLE_EQ(g.AverageDegree(), 1.0);
}

TEST(GraphBuilderTest, ReturnsSequentialEdgeIds) {
  GraphBuilder b(3);
  EXPECT_EQ(b.AddEdge(0, 1), 0u);
  EXPECT_EQ(b.AddEdge(1, 2), 1u);
  EXPECT_EQ(b.AddEdge(2, 0), 2u);
}

}  // namespace
}  // namespace pitex
