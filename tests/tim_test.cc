// Tests for the TIM tree-based baseline: exactness on trees, the known
// bias on graphs with many disjoint paths, and pruning behaviour.

#include <gtest/gtest.h>

#include "running_example.h"
#include "src/graph/generators.h"
#include "src/sampling/exact.h"
#include "src/sampling/tim_estimator.h"

namespace pitex {
namespace {

class ConstProbs final : public EdgeProbFn {
 public:
  explicit ConstProbs(double p) : p_(p) {}
  double Prob(EdgeId) const override { return p_; }

 private:
  double p_;
};

TEST(TimTest, ExactOnChains) {
  Graph g = Chain(5);
  TimEstimator tim(g, {.path_threshold = 1e-9});
  const double p = 0.4;
  const Estimate est = tim.EstimateInfluence(0, ConstProbs(p));
  EXPECT_NEAR(est.influence, 1 + p + p * p + p * p * p + p * p * p * p,
              1e-9);
}

TEST(TimTest, ExactOnStars) {
  Graph g = Star(11);
  TimEstimator tim(g, {});
  const Estimate est = tim.EstimateInfluence(0, ConstProbs(0.2));
  EXPECT_NEAR(est.influence, 1 + 10 * 0.2, 1e-9);
}

TEST(TimTest, UnderestimatesMultiPathGraphs) {
  // Diamond 0->{1,2}->3: max-path estimate for 3 is p^2; the truth is
  // 1-(1-p^2)^2 > p^2 — TIM's documented bias (Fig. 8 behaviour).
  GraphBuilder b(4);
  b.AddEdge(0, 1);
  b.AddEdge(0, 2);
  b.AddEdge(1, 3);
  b.AddEdge(2, 3);
  Graph g = b.Build();
  const ConstProbs probs(0.5);
  TimEstimator tim(g, {.path_threshold = 1e-9});
  const double exact = ExactInfluence(g, probs, 0);
  const Estimate est = tim.EstimateInfluence(0, probs);
  EXPECT_LT(est.influence, exact - 0.1);
}

TEST(TimTest, PathThresholdPrunesDeepVertices) {
  Graph g = Chain(30);
  TimEstimator loose(g, {.path_threshold = 1e-12});
  TimEstimator tight(g, TimOptions{.path_threshold = 0.1});
  const ConstProbs probs(0.5);
  const Estimate l = loose.EstimateInfluence(0, probs);
  const Estimate t = tight.EstimateInfluence(0, probs);
  EXPECT_GT(l.influence, t.influence);
  EXPECT_LT(l.edges_visited, 40u);  // chain: at most one probe per vertex
}

TEST(TimTest, MaxVerticesCapsWork) {
  Graph g = Chain(100);
  TimEstimator capped(g, TimOptions{.path_threshold = 0.0,
                                    .max_vertices = 10});
  const Estimate est = capped.EstimateInfluence(0, ConstProbs(1.0));
  EXPECT_NEAR(est.influence, 10.0, 1e-9);  // settles exactly 10 vertices
}

TEST(TimTest, PicksMaxProbabilityPath) {
  // Two paths to 2: direct (0.3) and via 1 (0.9 * 0.9 = 0.81). The tree
  // estimate must use the stronger indirect path.
  GraphBuilder b(3);
  const EdgeId direct = b.AddEdge(0, 2);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  Graph g = b.Build();
  class PathProbs final : public EdgeProbFn {
   public:
    explicit PathProbs(EdgeId direct) : direct_(direct) {}
    double Prob(EdgeId e) const override { return e == direct_ ? 0.3 : 0.9; }

   private:
    EdgeId direct_;
  };
  TimEstimator tim(g, {.path_threshold = 1e-9});
  const Estimate est = tim.EstimateInfluence(0, PathProbs(direct));
  EXPECT_NEAR(est.influence, 1.0 + 0.9 + 0.81, 1e-9);
}

TEST(TimTest, RunningExampleRanking) {
  // On the running example every per-tag-set live graph is a tree from u1,
  // so TIM is exact there and must rank {w3,w4} on top.
  SocialNetwork n = MakeRunningExample();
  TimEstimator tim(n.graph, {.path_threshold = 1e-9});
  double best = 0.0;
  std::pair<TagId, TagId> best_pair{0, 0};
  for (TagId a = 0; a < 4; ++a) {
    for (TagId b = a + 1; b < 4; ++b) {
      const TagId tags[] = {a, b};
      const auto post = n.topics.Posterior(tags);
      const PosteriorProbs probs(n.influence, post);
      const double value = tim.EstimateInfluence(0, probs).influence;
      if (value > best) {
        best = value;
        best_pair = {a, b};
      }
    }
  }
  EXPECT_EQ(best_pair, (std::pair<TagId, TagId>{2, 3}));
}

}  // namespace
}  // namespace pitex
