// Serve-during-update: queries stream through PitexService while
// DynamicRrIndex repairs are published concurrently. Every answer must be
// *exactly* correct for the epoch it reports — computed bit-identically
// by a reference engine bound to that epoch's retained snapshot — and
// the epochs observed must respect publication order. This test is the
// primary ThreadSanitizer target for the serving subsystem (CI runs it
// under TSan; see .github/workflows/ci.yml).

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <map>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "running_example.h"
#include "src/serve/pitex_service.h"

namespace pitex {
namespace {

struct Observation {
  PitexQuery query;
  ServedResult served;
};

TEST(ServeDuringUpdateTest, EveryAnswerExactForItsEpoch) {
  const SocialNetwork n = MakeRunningExample();

  ServeOptions options;
  options.engine.method = Method::kIndexEst;
  options.engine.index_theta_per_vertex = 150.0;
  options.engine.seed = 5;
  options.num_threads = 4;
  options.mode = ScheduleMode::kWorkStealing;
  options.cache_capacity = 64;  // cache must stay epoch-correct too
  options.enable_updates = true;
  // Exercise the maintenance-pool publish path (overlapped network copy
  // + pool-parallel pack) under concurrency, incl. the TSan CI job.
  options.publish_threads = 2;
  PitexService service(&n, options);
  service.Start();

  // Retain every published snapshot so answers can be re-derived later.
  std::map<uint64_t, std::shared_ptr<const IndexSnapshot>> snapshots;
  snapshots[service.current_epoch()] = service.CurrentSnapshot();

  constexpr size_t kUpdateRounds = 6;
  constexpr size_t kProducers = 2;
  std::atomic<bool> updates_done{false};

  // Producers stream queries for the whole duration of the update storm.
  std::vector<std::thread> producers;
  std::vector<std::vector<Observation>> observations(kProducers);
  for (size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([p, &n, &service, &updates_done, &observations] {
      size_t i = 0;
      while (!updates_done.load(std::memory_order_acquire) || i < 8) {
        const PitexQuery query = {
            .user = static_cast<VertexId>((p * 3 + i) % n.num_vertices()),
            .k = 2};
        ServedResult served = service.Submit(query).get();
        observations[p].push_back({query, std::move(served)});
        ++i;
      }
    });
  }

  // The updater drifts the model and publishes a new epoch per round,
  // while the producers are mid-stream.
  for (size_t round = 0; round < kUpdateRounds; ++round) {
    std::vector<EdgeInfluenceUpdate> updates(1);
    updates[0].edge = static_cast<EdgeId>(round % n.num_edges());
    updates[0].entries = {
        {static_cast<TopicId>(round % n.topics.num_topics()),
         0.2 + 0.1 * static_cast<double>(round % 5)}};
    const uint64_t epoch = service.ApplyUpdates(updates);
    // Single-writer: Current() right after publish is exactly `epoch`.
    snapshots[epoch] = service.CurrentSnapshot();
    ASSERT_EQ(snapshots[epoch]->epoch(), epoch);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  updates_done.store(true, std::memory_order_release);
  for (std::thread& producer : producers) producer.join();

  // A query submitted after the storm must see the final epoch.
  const ServedResult final_result = service.Submit({.user = 0, .k = 2}).get();
  EXPECT_EQ(final_result.epoch, kUpdateRounds + 1);

  // Verify every observation against a reference engine bound to the
  // snapshot of the epoch it was served from. kIndexEst is deterministic
  // given an index, so the answers must match bit-for-bit.
  std::map<uint64_t, std::unique_ptr<PitexEngine>> references;
  std::set<uint64_t> epochs_seen;
  size_t verified = 0;
  for (const auto& per_producer : observations) {
    for (const Observation& observation : per_producer) {
      const uint64_t epoch = observation.served.epoch;
      epochs_seen.insert(epoch);
      ASSERT_TRUE(snapshots.count(epoch)) << "unknown epoch " << epoch;
      auto& reference = references[epoch];
      if (reference == nullptr) {
        const IndexSnapshot& snapshot = *snapshots[epoch];
        ASSERT_NE(snapshot.rr_index(), nullptr);
        reference = std::make_unique<PitexEngine>(&snapshot.network(),
                                                  options.engine);
        reference->UseSharedRrIndex(snapshot.rr_index());
        reference->BuildIndex();
      }
      const PitexResult expected = reference->Explore(observation.query);
      EXPECT_EQ(observation.served.result.tags, expected.tags)
          << "epoch " << epoch << " user " << observation.query.user;
      EXPECT_DOUBLE_EQ(observation.served.result.influence,
                       expected.influence)
          << "epoch " << epoch << " user " << observation.query.user;
      ++verified;
    }
  }
  EXPECT_GT(verified, 0u);
  // The producers outlive the whole update storm (they keep submitting
  // until it ends), so they must observe at least first and last epochs.
  EXPECT_GE(epochs_seen.size(), 2u);

  // Epochs observed by one producer never go backwards: publication
  // order is respected even across steals and rebinds.
  for (const auto& per_producer : observations) {
    uint64_t last = 0;
    for (const Observation& observation : per_producer) {
      EXPECT_GE(observation.served.epoch, last);
      last = observation.served.epoch;
    }
  }
}

TEST(ServeDuringUpdateTest, ConcurrentBatchesDuringUpdates) {
  // Coarser stress shape: whole ServeAll batches racing ApplyUpdates
  // from another thread, with the cache on. Answers must be well-formed
  // and stamped with a published epoch.
  const SocialNetwork n = MakeRunningExample();
  ServeOptions options;
  options.engine.method = Method::kIndexEstPlus;
  options.engine.index_theta_per_vertex = 100.0;
  options.num_threads = 3;
  options.enable_updates = true;
  options.cache_capacity = 32;
  PitexService service(&n, options);
  service.Start();

  std::atomic<bool> done{false};
  std::thread updater([&service, &n, &done] {
    for (size_t round = 0; round < 5; ++round) {
      std::vector<EdgeInfluenceUpdate> updates(1);
      updates[0].edge = static_cast<EdgeId>((round * 2 + 1) % n.num_edges());
      updates[0].entries = {{static_cast<TopicId>(round % 3), 0.4}};
      service.ApplyUpdates(updates);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    done.store(true, std::memory_order_release);
  });

  std::vector<PitexQuery> queries;
  for (size_t i = 0; i < 10; ++i) {
    queries.push_back({.user = static_cast<VertexId>(i % n.num_vertices()),
                       .k = 2});
  }
  size_t batches = 0;
  while (!done.load(std::memory_order_acquire) || batches < 2) {
    const auto served = service.ServeAll(queries);
    ++batches;
    for (const ServedResult& result : served) {
      ASSERT_EQ(result.result.tags.size(), 2u);
      ASSERT_GE(result.epoch, 1u);
      ASSERT_LE(result.epoch, 6u);
    }
  }
  updater.join();
  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.epochs_published, 6u);
  EXPECT_EQ(stats.queries_served, batches * queries.size());
  EXPECT_EQ(stats.cache_hits + stats.cache_misses, stats.queries_served);
}

}  // namespace
}  // namespace pitex
