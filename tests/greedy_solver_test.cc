#include "src/core/greedy_solver.h"

#include <gtest/gtest.h>

#include "running_example.h"
#include "src/core/best_effort_solver.h"
#include "src/datasets/synthetic.h"
#include "src/sampling/lazy_sampler.h"

namespace pitex {
namespace {

SampleSizePolicy TestPolicy(size_t num_tags, size_t k) {
  SampleSizePolicy policy;
  policy.eps = 0.2;
  policy.num_tags = static_cast<int64_t>(num_tags);
  policy.k = static_cast<int64_t>(k);
  policy.min_samples = 4000;
  policy.max_samples = 20000;
  return policy;
}

TEST(GreedySolverTest, FindsRunningExampleOptimum) {
  // On the running example greedy happens to be exact: w3/w4 are also the
  // best singletons.
  SocialNetwork n = MakeRunningExample();
  LazySampler sampler(n.graph, TestPolicy(4, 2), 5);
  const PitexResult r = SolveByGreedy(n, {.user = 0, .k = 2}, &sampler);
  EXPECT_EQ(r.tags, (std::vector<TagId>{2, 3}));
  EXPECT_NEAR(r.influence, 1.733, 0.08);
}

TEST(GreedySolverTest, EvaluationCountIsLinear) {
  SocialNetwork n = MakeRunningExample();
  LazySampler sampler(n.graph, TestPolicy(4, 3), 5);
  const PitexResult r = SolveByGreedy(n, {.user = 0, .k = 3}, &sampler);
  // Rounds evaluate 4 + 3 + 2 candidate sets.
  EXPECT_EQ(r.sets_evaluated, 9u);
  EXPECT_EQ(r.tags.size(), 3u);
}

TEST(GreedySolverTest, TagsDistinctAndSorted) {
  SocialNetwork n = GenerateDataset(LastfmSpec(0.1));
  LazySampler sampler(n.graph, TestPolicy(n.topics.num_tags(), 3), 5);
  const auto users = SampleUserGroup(n.graph, UserGroup::kHigh, 1, 3);
  const PitexResult r =
      SolveByGreedy(n, {.user = users[0], .k = 3}, &sampler);
  ASSERT_EQ(r.tags.size(), 3u);
  EXPECT_LT(r.tags[0], r.tags[1]);
  EXPECT_LT(r.tags[1], r.tags[2]);
}

TEST(GreedySolverTest, NeverBeatsBestEffortByMuch) {
  // Greedy has no guarantee but can never (statistically) exceed the
  // exhaustive search; allow sampling slack.
  SocialNetwork n = GenerateDataset(LastfmSpec(0.1));
  const UpperBoundContext ctx(n.topics);
  const auto users = SampleUserGroup(n.graph, UserGroup::kMid, 3, 9);
  for (VertexId u : users) {
    LazySampler s1(n.graph, TestPolicy(n.topics.num_tags(), 2), 7);
    LazySampler s2(n.graph, TestPolicy(n.topics.num_tags(), 2), 7);
    const PitexResult greedy = SolveByGreedy(n, {.user = u, .k = 2}, &s1);
    const PitexResult best =
        SolveByBestEffort(n, {.user = u, .k = 2}, ctx, &s2);
    EXPECT_LE(greedy.influence,
              best.influence * 1.15 + 0.2)  // sampling slack
        << "user " << u;
  }
}

TEST(GreedySolverTest, KEqualsVocabularySelectsEverything) {
  SocialNetwork n = MakeRunningExample();
  LazySampler sampler(n.graph, TestPolicy(4, 4), 5);
  const PitexResult r = SolveByGreedy(n, {.user = 0, .k = 4}, &sampler);
  EXPECT_EQ(r.tags, (std::vector<TagId>{0, 1, 2, 3}));
}

TEST(GreedySolverDeathTest, RejectsBadQuery) {
  SocialNetwork n = MakeRunningExample();
  LazySampler sampler(n.graph, TestPolicy(4, 2), 5);
  EXPECT_DEATH(SolveByGreedy(n, {.user = 0, .k = 9}, &sampler),
               "PITEX_CHECK");
}

}  // namespace
}  // namespace pitex
