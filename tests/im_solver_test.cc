// Tests for the topic-aware influence-maximization solver
// (src/core/im_solver.h): analytic optima on simple topologies,
// submodular diminishing returns, spread-estimate accuracy against
// forward Monte-Carlo, and PITEX composition.

#include "src/core/im_solver.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "running_example.h"
#include "src/core/engine.h"
#include "src/datasets/synthetic.h"
#include "src/graph/generators.h"
#include "src/sampling/exact.h"
#include "src/sampling/influence_estimator.h"
#include "src/util/random.h"

namespace pitex {
namespace {

class ConstProbs final : public EdgeProbFn {
 public:
  explicit ConstProbs(double p) : p_(p) {}
  double Prob(EdgeId) const override { return p_; }

 private:
  double p_;
};

ImOptions DenseOptions(size_t num_seeds) {
  ImOptions options;
  options.num_seeds = num_seeds;
  options.theta_override = 30000;
  options.seed = 5;
  return options;
}

// Forward Monte-Carlo spread of a seed set (test oracle).
double SimulateSpread(const Graph& graph, const EdgeProbFn& probs,
                      std::span<const VertexId> seeds, int trials,
                      uint64_t seed) {
  Rng rng(seed);
  double total = 0.0;
  std::vector<uint8_t> active(graph.num_vertices());
  std::vector<VertexId> frontier;
  for (int t = 0; t < trials; ++t) {
    std::fill(active.begin(), active.end(), 0);
    frontier.assign(seeds.begin(), seeds.end());
    for (const VertexId s : seeds) active[s] = 1;
    size_t spread = 0;
    while (!frontier.empty()) {
      const VertexId v = frontier.back();
      frontier.pop_back();
      ++spread;
      for (const auto& [w, e] : graph.OutEdges(v)) {
        if (!active[w] && rng.NextBernoulli(probs.Prob(e))) {
          active[w] = 1;
          frontier.push_back(w);
        }
      }
    }
    total += static_cast<double>(spread);
  }
  return total / trials;
}

TEST(ImSolverTest, StarRootIsTheBestSeed) {
  const Graph graph = Star(20);
  const ConstProbs probs(1.0);
  const ImResult result = SolveImWithProbs(graph, probs, DenseOptions(1));
  ASSERT_EQ(result.seeds.size(), 1u);
  EXPECT_EQ(result.seeds[0], 0u);
  EXPECT_NEAR(result.spread, 20.0, 0.5);
}

TEST(ImSolverTest, ChainHeadIsTheBestSeed) {
  const Graph graph = Chain(10);
  const ConstProbs probs(1.0);
  const ImResult result = SolveImWithProbs(graph, probs, DenseOptions(1));
  ASSERT_EQ(result.seeds.size(), 1u);
  EXPECT_EQ(result.seeds[0], 0u);
  EXPECT_NEAR(result.spread, 10.0, 0.5);
}

TEST(ImSolverTest, DisjointStarsNeedBothRoots) {
  // Two stars: roots 0 and 10, leaves 1..9 and 11..19.
  GraphBuilder builder(20);
  for (VertexId leaf = 1; leaf < 10; ++leaf) builder.AddEdge(0, leaf);
  for (VertexId leaf = 11; leaf < 20; ++leaf) builder.AddEdge(10, leaf);
  const Graph graph = builder.Build();
  const ConstProbs probs(1.0);

  const ImResult result = SolveImWithProbs(graph, probs, DenseOptions(2));
  ASSERT_EQ(result.seeds.size(), 2u);
  std::vector<VertexId> seeds = result.seeds;
  std::sort(seeds.begin(), seeds.end());
  EXPECT_EQ(seeds[0], 0u);
  EXPECT_EQ(seeds[1], 10u);
  EXPECT_NEAR(result.spread, 20.0, 0.5);
}

TEST(ImSolverTest, ZeroProbabilitySpreadEqualsSeedCount) {
  const Graph graph = Chain(30);
  const ConstProbs probs(0.0);
  const ImResult result = SolveImWithProbs(graph, probs, DenseOptions(4));
  ASSERT_EQ(result.seeds.size(), 4u);
  EXPECT_NEAR(result.spread, 4.0, 0.4);
}

TEST(ImSolverTest, MarginalSpreadIsNonIncreasing) {
  Rng rng(11);
  const Graph graph = PreferentialAttachment(60, 3, &rng);
  const ConstProbs probs(0.3);
  const ImResult result = SolveImWithProbs(graph, probs, DenseOptions(8));
  ASSERT_EQ(result.marginal_spread.size(), result.seeds.size());
  for (size_t i = 1; i < result.marginal_spread.size(); ++i) {
    EXPECT_LE(result.marginal_spread[i], result.marginal_spread[i - 1] + 1e-9)
        << "position " << i;
  }
  // Marginals sum to the total spread.
  double sum = 0.0;
  for (const double m : result.marginal_spread) sum += m;
  EXPECT_NEAR(sum, result.spread, 1e-9);
}

TEST(ImSolverTest, SpreadEstimateMatchesForwardSimulation) {
  Rng rng(13);
  const Graph graph = ErdosRenyi(40, 120, &rng);
  const ConstProbs probs(0.2);
  const ImResult result = SolveImWithProbs(graph, probs, DenseOptions(3));
  ASSERT_EQ(result.seeds.size(), 3u);
  const double simulated =
      SimulateSpread(graph, probs, result.seeds, 20000, 99);
  EXPECT_NEAR(result.spread, simulated, 0.05 * simulated + 0.1);
}

TEST(ImSolverTest, GreedyBeatsRandomSeeds) {
  Rng rng(17);
  const Graph graph = PreferentialAttachment(100, 3, &rng);
  const ConstProbs probs(0.25);
  const ImResult greedy = SolveImWithProbs(graph, probs, DenseOptions(5));

  Rng pick(3);
  std::vector<VertexId> random_seeds;
  while (random_seeds.size() < 5) {
    const auto v = static_cast<VertexId>(pick.NextBounded(100));
    if (std::find(random_seeds.begin(), random_seeds.end(), v) ==
        random_seeds.end()) {
      random_seeds.push_back(v);
    }
  }
  const double greedy_sim =
      SimulateSpread(graph, probs, greedy.seeds, 8000, 7);
  const double random_sim =
      SimulateSpread(graph, probs, random_seeds, 8000, 7);
  EXPECT_GE(greedy_sim, random_sim);
}

TEST(ImSolverTest, DeterministicForFixedSeed) {
  Rng rng(19);
  const Graph graph = ErdosRenyi(50, 150, &rng);
  const ConstProbs probs(0.3);
  const ImResult a = SolveImWithProbs(graph, probs, DenseOptions(4));
  const ImResult b = SolveImWithProbs(graph, probs, DenseOptions(4));
  EXPECT_EQ(a.seeds, b.seeds);
  EXPECT_DOUBLE_EQ(a.spread, b.spread);
}

TEST(ImSolverTest, BestSingleSeedIsTheExactArgmax) {
  // Running example, k = 1: the greedy pick must be the vertex with the
  // highest exact influence under the tag set. (Note this is u4, not
  // the PITEX-favored u1 — the best user to *seed* a fixed tag set and
  // the best tag set *for* a user are different questions, which is the
  // paper's Sec. 2 point of contrast.)
  const SocialNetwork n = MakeRunningExample();
  const TagId tags[] = {2, 3};
  const auto post = n.topics.Posterior(tags);
  const PosteriorProbs probs(n.influence, post);
  VertexId best = 0;
  double best_influence = -1.0;
  for (VertexId u = 0; u < n.num_vertices(); ++u) {
    const double influence = ExactInfluence(n.graph, probs, u);
    if (influence > best_influence) {
      best_influence = influence;
      best = u;
    }
  }

  const ImResult result = SolveTopicAwareIm(n, tags, DenseOptions(1));
  ASSERT_EQ(result.seeds.size(), 1u);
  EXPECT_EQ(result.seeds[0], best);
  EXPECT_NEAR(result.spread, best_influence, 0.05 * best_influence);
}

TEST(ImSolverTest, TagSetChangesTheAchievableSpread) {
  const SocialNetwork n = MakeRunningExample();
  const TagId z3_tags[] = {2, 3};
  const TagId z12_tags[] = {0, 1};
  const ImResult z3 = SolveTopicAwareIm(n, z3_tags, DenseOptions(2));
  const ImResult z12 = SolveTopicAwareIm(n, z12_tags, DenseOptions(2));
  // The z3 cluster carries far more activation mass (Example 1).
  EXPECT_GT(z3.spread, z12.spread);
}

TEST(ImSolverTest, ComposesWithPitex) {
  // The deployment workflow: IM finds who can campaign, PITEX finds each
  // campaigner's selling points.
  DatasetSpec spec = LastfmSpec(0.3);
  spec.seed = 29;
  const SocialNetwork n = GenerateDataset(spec);

  const TagId tags[] = {0, 1, 2};
  ImOptions im_options;
  im_options.num_seeds = 3;
  im_options.theta_per_vertex = 4.0;
  const ImResult seeds = SolveTopicAwareIm(n, tags, im_options);
  ASSERT_FALSE(seeds.seeds.empty());

  EngineOptions engine_options;
  engine_options.method = Method::kLazy;
  PitexEngine engine(&n, engine_options);
  for (const VertexId seed : seeds.seeds) {
    const PitexResult r = engine.Explore({.user = seed, .k = 2});
    EXPECT_EQ(r.tags.size(), 2u);
    EXPECT_GE(r.influence, 1.0);
  }
}

TEST(ImSolverTest, SeedCountClampedByUsefulVertices) {
  // A 2-vertex graph cannot produce more than 2 seeds.
  GraphBuilder builder(2);
  builder.AddEdge(0, 1);
  const Graph graph = builder.Build();
  const ConstProbs probs(0.5);
  const ImResult result = SolveImWithProbs(graph, probs, DenseOptions(10));
  EXPECT_LE(result.seeds.size(), 2u);
}

}  // namespace
}  // namespace pitex
