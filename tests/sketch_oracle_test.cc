// Tests for the bottom-k reachability sketch oracle
// (src/sampling/sketch_oracle.h): exactness in the small-count regime,
// agreement with the exact envelope influence, dominance over tag-set
// influences, influencer ranking, and determinism.

#include "src/sampling/sketch_oracle.h"

#include <gtest/gtest.h>

#include "running_example.h"
#include "src/datasets/synthetic.h"
#include "src/sampling/exact.h"
#include "src/sampling/influence_estimator.h"
#include "src/util/random.h"

namespace pitex {
namespace {

SketchOptions AccurateOptions() {
  SketchOptions options;
  options.sketch_size = 256;
  options.num_worlds = 512;
  options.seed = 3;
  return options;
}

TEST(SketchOracleTest, MatchesExactEnvelopeInfluence) {
  const SocialNetwork n = MakeRunningExample();
  SketchOracle oracle(&n, AccurateOptions());
  oracle.Build();

  const EnvelopeProbs envelope(n.influence);
  for (VertexId u = 0; u < n.num_vertices(); ++u) {
    const double exact = ExactInfluence(n.graph, envelope, u);
    EXPECT_NEAR(oracle.EnvelopeInfluence(u), exact, 0.12 * exact + 0.05)
        << "user " << u;
  }
}

TEST(SketchOracleTest, DominatesEveryTagSetInfluence) {
  const SocialNetwork n = MakeRunningExample();
  SketchOracle oracle(&n, AccurateOptions());
  oracle.Build();

  // The envelope estimate (with modest statistical slack) must sit above
  // the exact influence of every size-2 tag set for every user —
  // otherwise screening with it would wrongly rule out candidates.
  constexpr double kSlack = 1.1;
  for (VertexId u = 0; u < n.num_vertices(); ++u) {
    const double bound = kSlack * oracle.EnvelopeInfluence(u);
    for (TagId a = 0; a < 4; ++a) {
      for (TagId b = a + 1; b < 4; ++b) {
        const TagId tags[] = {a, b};
        const auto post = n.topics.Posterior(tags);
        const PosteriorProbs probs(n.influence, post);
        EXPECT_GE(bound, ExactInfluence(n.graph, probs, u))
            << "user " << u << " tags " << a << "," << b;
      }
    }
  }
}

TEST(SketchOracleTest, SinkVertexScoresExactlyOne) {
  const SocialNetwork n = MakeRunningExample();
  SketchOracle oracle(&n, AccurateOptions());
  oracle.Build();
  // u7 (id 6) has no out-edges: envelope influence is exactly 1. With
  // num_worlds > sketch_size the self-elements alone overflow the sketch,
  // so the bottom-k estimator (not the exact count) answers — near 1.
  EXPECT_NEAR(oracle.EnvelopeInfluence(6), 1.0, 0.1);

  // With num_worlds <= sketch_size the count is exact.
  SketchOptions exact_options;
  exact_options.sketch_size = 64;
  exact_options.num_worlds = 32;
  SketchOracle exact_oracle(&n, exact_options);
  exact_oracle.Build();
  EXPECT_DOUBLE_EQ(exact_oracle.EnvelopeInfluence(6), 1.0);
}

TEST(SketchOracleTest, DeterministicChainIsExact) {
  // 0 -> 1 -> 2 -> 3 with p(e) = 1: reach sizes are 4, 3, 2, 1 in every
  // world. With sketch_size > num_worlds * reach the counts are exact.
  SocialNetwork n;
  GraphBuilder graph(4);
  graph.AddEdge(0, 1);
  graph.AddEdge(1, 2);
  graph.AddEdge(2, 3);
  n.graph = graph.Build();
  n.topics = TopicModel(1, 1);
  InfluenceGraphBuilder influence(3);
  for (EdgeId e = 0; e < 3; ++e) {
    const EdgeTopicEntry entry{0, 1.0};
    influence.SetEdgeTopics(e, std::span(&entry, 1));
  }
  n.influence = influence.Build();

  SketchOptions options;
  options.sketch_size = 64;
  options.num_worlds = 8;  // 8 * 4 = 32 elements < 64: exact regime
  SketchOracle oracle(&n, options);
  oracle.Build();
  EXPECT_DOUBLE_EQ(oracle.EnvelopeInfluence(0), 4.0);
  EXPECT_DOUBLE_EQ(oracle.EnvelopeInfluence(1), 3.0);
  EXPECT_DOUBLE_EQ(oracle.EnvelopeInfluence(2), 2.0);
  EXPECT_DOUBLE_EQ(oracle.EnvelopeInfluence(3), 1.0);
}

TEST(SketchOracleTest, HandlesCycles) {
  // 3-cycle with p = 1: every vertex reaches all three in every world.
  SocialNetwork n;
  GraphBuilder graph(3);
  graph.AddEdge(0, 1);
  graph.AddEdge(1, 2);
  graph.AddEdge(2, 0);
  n.graph = graph.Build();
  n.topics = TopicModel(1, 1);
  InfluenceGraphBuilder influence(3);
  for (EdgeId e = 0; e < 3; ++e) {
    const EdgeTopicEntry entry{0, 1.0};
    influence.SetEdgeTopics(e, std::span(&entry, 1));
  }
  n.influence = influence.Build();

  SketchOptions options;
  options.sketch_size = 64;
  options.num_worlds = 8;
  SketchOracle oracle(&n, options);
  oracle.Build();
  for (VertexId v = 0; v < 3; ++v) {
    EXPECT_DOUBLE_EQ(oracle.EnvelopeInfluence(v), 3.0) << "vertex " << v;
  }
}

TEST(SketchOracleTest, TopInfluencersRankByEnvelopeReach) {
  const SocialNetwork n = MakeRunningExample();
  SketchOracle oracle(&n, AccurateOptions());
  oracle.Build();

  const auto top = oracle.TopInfluencers(3);
  ASSERT_EQ(top.size(), 3u);
  // u1 (id 0) reaches the whole z3 cluster under the envelope; exact
  // envelope influences rank it first.
  EXPECT_EQ(top[0].first, 0u);
  EXPECT_GE(top[0].second, top[1].second);
  EXPECT_GE(top[1].second, top[2].second);
}

TEST(SketchOracleTest, TopInfluencersCountClamped) {
  const SocialNetwork n = MakeRunningExample();
  SketchOracle oracle(&n, AccurateOptions());
  oracle.Build();
  EXPECT_EQ(oracle.TopInfluencers(100).size(), n.num_vertices());
  EXPECT_TRUE(oracle.TopInfluencers(0).empty());
}

TEST(SketchOracleTest, DeterministicForFixedSeed) {
  const SocialNetwork n = MakeRunningExample();
  SketchOracle a(&n, AccurateOptions());
  SketchOracle b(&n, AccurateOptions());
  a.Build();
  b.Build();
  for (VertexId v = 0; v < n.num_vertices(); ++v) {
    EXPECT_DOUBLE_EQ(a.EnvelopeInfluence(v), b.EnvelopeInfluence(v));
  }
}

TEST(SketchOracleTest, AccuracyOnSyntheticDataset) {
  DatasetSpec spec = LastfmSpec(0.3);
  spec.seed = 41;
  const SocialNetwork n = GenerateDataset(spec);

  SketchOptions options;
  options.sketch_size = 128;
  options.num_worlds = 64;
  SketchOracle oracle(&n, options);
  oracle.Build();

  // Spot-check against a brute-force Monte-Carlo envelope estimate for a
  // few users (exact enumeration is infeasible here).
  const EnvelopeProbs envelope(n.influence);
  const auto users = SampleUserGroup(n.graph, UserGroup::kHigh, 3, 9);
  for (const VertexId u : users) {
    Rng rng(123 + u);
    double total = 0.0;
    const int kTrials = 600;
    std::vector<uint8_t> active(n.num_vertices());
    std::vector<VertexId> frontier;
    for (int t = 0; t < kTrials; ++t) {
      std::fill(active.begin(), active.end(), 0);
      frontier.assign(1, u);
      active[u] = 1;
      size_t spread = 0;
      while (!frontier.empty()) {
        const VertexId x = frontier.back();
        frontier.pop_back();
        ++spread;
        for (const auto& [v, e] : n.graph.OutEdges(x)) {
          if (!active[v] && rng.NextBernoulli(envelope.Prob(e))) {
            active[v] = 1;
            frontier.push_back(v);
          }
        }
      }
      total += static_cast<double>(spread);
    }
    const double mc = total / kTrials;
    EXPECT_NEAR(oracle.EnvelopeInfluence(u), mc, 0.25 * mc + 0.5)
        << "user " << u;
  }
}

TEST(SketchOracleTest, SizeAndBuildTimeReported) {
  const SocialNetwork n = MakeRunningExample();
  SketchOracle oracle(&n);
  oracle.Build();
  EXPECT_GT(oracle.SizeBytes(), 0u);
  EXPECT_GE(oracle.build_seconds(), 0.0);
}

}  // namespace
}  // namespace pitex
