// Parameterized property sweeps for the extension modules (triggering
// sampler, sketch oracle, dynamic index, engine index adoption) across
// random graph topologies: Erdos-Renyi, preferential attachment, and the
// paper's adversarial star / celebrity shapes (Fig. 3).

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <tuple>

#include "src/core/engine.h"
#include "src/graph/generators.h"
#include "src/index/dynamic_index.h"
#include "src/index/index_io.h"
#include "src/sampling/exact.h"
#include "src/sampling/lazy_sampler.h"
#include "src/sampling/sketch_oracle.h"
#include "src/sampling/triggering_sampler.h"

namespace pitex {
namespace {

enum class Family { kErdosRenyi, kPreferential, kStar, kCelebrity };

const char* FamilyName(Family family) {
  switch (family) {
    case Family::kErdosRenyi: return "ErdosRenyi";
    case Family::kPreferential: return "Preferential";
    case Family::kStar: return "Star";
    case Family::kCelebrity: return "Celebrity";
  }
  return "?";
}

// A small two-topic network over the given topology, exact-oracle
// friendly (<= kMaxExactEdges probabilistic edges). Every edge carries
// edge_prob on topic 0 and 2 * edge_prob on topic 1; tag 0 selects topic
// 0 and tag 1 topic 1, so the envelope (2 * edge_prob) strictly
// dominates the influence of tag set {0}.
SocialNetwork MakeNetwork(Family family, uint64_t seed, double edge_prob) {
  Rng rng(seed);
  SocialNetwork n;
  switch (family) {
    case Family::kErdosRenyi:
      n.graph = ErdosRenyi(9, 18, &rng);  // <= kMaxExactEdges random edges
      break;
    case Family::kPreferential:
      n.graph = PreferentialAttachment(10, 2, &rng);
      break;
    case Family::kStar:
      n.graph = Star(12);
      break;
    case Family::kCelebrity:
      n.graph = Celebrity(5);  // 11 vertices
      break;
  }
  n.topics = TopicModel(2, 2);
  n.topics.SetTagTopic(0, 0, 1.0);
  n.topics.SetTagTopic(1, 1, 1.0);
  InfluenceGraphBuilder influence(n.graph.num_edges());
  for (EdgeId e = 0; e < n.graph.num_edges(); ++e) {
    const EdgeTopicEntry entries[] = {{0, edge_prob},
                                      {1, std::min(1.0, 2.0 * edge_prob)}};
    influence.SetEdgeTopics(e, entries);
  }
  n.influence = influence.Build();
  n.tags.Intern("a");
  n.tags.Intern("b");
  return n;
}

class FamilySweepTest
    : public ::testing::TestWithParam<std::tuple<Family, uint64_t>> {};

INSTANTIATE_TEST_SUITE_P(
    Topologies, FamilySweepTest,
    ::testing::Combine(::testing::Values(Family::kErdosRenyi,
                                         Family::kPreferential, Family::kStar,
                                         Family::kCelebrity),
                       ::testing::Values(1u, 2u, 3u)),
    [](const auto& param_info) {
      return std::string(FamilyName(std::get<0>(param_info.param))) + "_seed" +
             std::to_string(std::get<1>(param_info.param));
    });

TEST_P(FamilySweepTest, TriggeringIcMatchesExact) {
  const auto [family, seed] = GetParam();
  const SocialNetwork n = MakeNetwork(family, seed, 0.35);
  const TagId tags[] = {0};
  const auto post = n.topics.Posterior(tags);
  const PosteriorProbs probs(n.influence, post);

  SampleSizePolicy policy;
  policy.min_samples = 30000;
  policy.max_samples = 30000;
  const IcTriggering ic;
  TriggeringSampler sampler(n.graph, &ic, policy, seed + 100);
  const double exact = ExactInfluence(n.graph, probs, 0);
  const double estimated = sampler.EstimateInfluence(0, probs).influence;
  EXPECT_NEAR(estimated, exact, 0.05 * exact + 0.05);
}

TEST_P(FamilySweepTest, LtSpreadNeverExceedsIcOnSharedWorlds) {
  // Under equal edge probabilities, LT selects at most one live in-edge
  // per vertex while IC keeps all — so IC's live-edge graphs dominate
  // and E[I_LT] <= E[I_IC] (+ noise).
  const auto [family, seed] = GetParam();
  const SocialNetwork n = MakeNetwork(family, seed, 0.35);
  const TagId tags[] = {0};
  const auto post = n.topics.Posterior(tags);
  const PosteriorProbs probs(n.influence, post);

  SampleSizePolicy policy;
  policy.min_samples = 20000;
  policy.max_samples = 20000;
  const IcTriggering ic;
  const LtTriggering lt;
  TriggeringSampler ic_sampler(n.graph, &ic, policy, seed + 7);
  TriggeringSampler lt_sampler(n.graph, &lt, policy, seed + 8);
  const double ic_spread = ic_sampler.EstimateInfluence(0, probs).influence;
  const double lt_spread = lt_sampler.EstimateInfluence(0, probs).influence;
  EXPECT_LE(lt_spread, ic_spread * 1.03 + 0.05);
}

TEST_P(FamilySweepTest, SketchEnvelopeDominatesTagInfluence) {
  const auto [family, seed] = GetParam();
  const SocialNetwork n = MakeNetwork(family, seed, 0.35);

  SketchOptions options;
  options.sketch_size = 256;
  options.num_worlds = 256;
  options.seed = seed;
  SketchOracle oracle(&n, options);
  oracle.Build();

  const TagId tags[] = {0};
  const auto post = n.topics.Posterior(tags);
  const PosteriorProbs probs(n.influence, post);
  for (VertexId u = 0; u < n.num_vertices(); ++u) {
    const double exact = ExactInfluence(n.graph, probs, u);
    EXPECT_GE(1.15 * oracle.EnvelopeInfluence(u), exact) << "user " << u;
  }
}

TEST_P(FamilySweepTest, DynamicIndexSurvivesUpdateStorm) {
  const auto [family, seed] = GetParam();
  const SocialNetwork n = MakeNetwork(family, seed, 0.35);
  RrIndexOptions options;
  options.theta_override = 30000;
  options.seed = seed;
  DynamicRrIndex index(n, options);
  index.Build();

  // Randomly rewrite half the edges, several rounds (raises and cuts).
  Rng rng(seed + 55);
  for (int round = 0; round < 3; ++round) {
    std::vector<EdgeInfluenceUpdate> updates;
    for (EdgeId e = 0; e < n.num_edges(); e += 2) {
      EdgeInfluenceUpdate update;
      update.edge = e;
      update.entries = {{0, 0.1 + 0.6 * rng.NextDouble()}};
      updates.push_back(std::move(update));
    }
    index.ApplyUpdates(updates);
  }

  const TagId tags[] = {0};
  const auto post = index.network().topics.Posterior(tags);
  const PosteriorProbs probs(index.network().influence, post);
  for (VertexId u = 0; u < std::min<size_t>(4, n.num_vertices()); ++u) {
    const double exact = ExactInfluence(index.network().graph, probs, u);
    const double estimated = index.EstimateInfluence(u, probs).influence;
    EXPECT_NEAR(estimated, exact, 0.08 * exact + 0.1) << "user " << u;
  }
}

TEST_P(FamilySweepTest, QueueReuseIsBehaviorNeutral) {
  // The Appendix-D queue-reuse optimization only changes allocation
  // behaviour: with a fixed seed, reuse on/off must produce the same
  // estimates bit for bit across repeated estimations.
  const auto [family, seed] = GetParam();
  const SocialNetwork n = MakeNetwork(family, seed, 0.35);
  const TagId tags[] = {0};
  const auto post = n.topics.Posterior(tags);
  const PosteriorProbs probs(n.influence, post);

  SampleSizePolicy policy;
  policy.min_samples = 500;
  policy.max_samples = 500;
  LazySampler reusing(n.graph, policy, seed + 1, /*reuse_queues=*/true);
  LazySampler fresh(n.graph, policy, seed + 1, /*reuse_queues=*/false);
  for (int call = 0; call < 3; ++call) {
    const Estimate a = reusing.EstimateInfluence(0, probs);
    const Estimate b = fresh.EstimateInfluence(0, probs);
    EXPECT_DOUBLE_EQ(a.influence, b.influence) << "call " << call;
    EXPECT_EQ(a.samples, b.samples);
    EXPECT_EQ(a.edges_visited, b.edges_visited);
  }
}

TEST_P(FamilySweepTest, EngineServesLoadedIndex) {
  const auto [family, seed] = GetParam();
  const SocialNetwork n = MakeNetwork(family, seed, 0.35);

  // Build + save with one engine...
  EngineOptions options;
  options.method = Method::kIndexEst;
  options.index_theta_per_vertex = 2000.0;
  options.seed = seed;
  PitexEngine builder(&n, options);
  builder.BuildIndex();

  RrIndexOptions index_options;
  index_options.theta_per_vertex = 2000.0;
  index_options.seed = seed;
  RrIndex index(n, index_options);
  index.Build();
  std::stringstream file;
  ASSERT_TRUE(SaveRrIndex(index, file));

  // ...and serve from a second engine that adopts the loaded replica.
  auto loaded = LoadRrIndex(n, file);
  ASSERT_NE(loaded, nullptr);
  PitexEngine server(&n, options);
  server.AdoptRrIndex(std::move(loaded));
  server.BuildIndex();  // attaches the adopted index, builds nothing

  const PitexResult from_builder = builder.Explore({.user = 0, .k = 1});
  const PitexResult from_server = server.Explore({.user = 0, .k = 1});
  EXPECT_EQ(from_server.tags, from_builder.tags);
  EXPECT_DOUBLE_EQ(from_server.influence, from_builder.influence);
}

}  // namespace
}  // namespace pitex
