// Tests for the enumeration and best-effort solvers: both must find the
// running example's optimum, agree with each other, and best-effort must
// prune without changing the answer.

#include <gtest/gtest.h>

#include "running_example.h"
#include "src/core/best_effort_solver.h"
#include "src/core/enumeration_solver.h"
#include "src/core/tagset_enumerator.h"
#include "src/datasets/synthetic.h"
#include "src/sampling/lazy_sampler.h"

namespace pitex {
namespace {

SampleSizePolicy TestPolicy(size_t num_tags, size_t k) {
  SampleSizePolicy policy;
  policy.eps = 0.2;
  policy.num_tags = static_cast<int64_t>(num_tags);
  policy.k = static_cast<int64_t>(k);
  policy.use_phi = true;
  policy.min_samples = 4000;
  policy.max_samples = 20000;
  return policy;
}

TEST(EnumerationSolverTest, FindsRunningExampleOptimum) {
  SocialNetwork n = MakeRunningExample();
  LazySampler sampler(n.graph, TestPolicy(4, 2), 3);
  const PitexResult r = SolveByEnumeration(n, {.user = 0, .k = 2}, &sampler);
  EXPECT_EQ(r.tags, (std::vector<TagId>{2, 3}));
  EXPECT_NEAR(r.influence, 1.733, 0.06);
  EXPECT_EQ(r.sets_evaluated, 6u);  // C(4,2)
}

TEST(EnumerationSolverTest, K1SelectsBestSingleTag) {
  SocialNetwork n = MakeRunningExample();
  LazySampler sampler(n.graph, TestPolicy(4, 1), 3);
  const PitexResult r = SolveByEnumeration(n, {.user = 0, .k = 1}, &sampler);
  EXPECT_EQ(r.sets_evaluated, 4u);
  EXPECT_TRUE(r.tags == std::vector<TagId>{2} ||
              r.tags == std::vector<TagId>{3});
}

TEST(EnumerationSolverTest, SinkUserGetsUnitInfluence) {
  SocialNetwork n = MakeRunningExample();
  LazySampler sampler(n.graph, TestPolicy(4, 2), 3);
  const PitexResult r = SolveByEnumeration(n, {.user = 6, .k = 2}, &sampler);
  EXPECT_NEAR(r.influence, 1.0, 1e-9);
}

TEST(BestEffortSolverTest, FindsRunningExampleOptimum) {
  SocialNetwork n = MakeRunningExample();
  const UpperBoundContext ctx(n.topics);
  LazySampler sampler(n.graph, TestPolicy(4, 2), 7);
  const PitexResult r =
      SolveByBestEffort(n, {.user = 0, .k = 2}, ctx, &sampler);
  EXPECT_EQ(r.tags, (std::vector<TagId>{2, 3}));
  EXPECT_NEAR(r.influence, 1.733, 0.06);
}

TEST(BestEffortSolverTest, AgreesWithEnumerationOnSyntheticData) {
  DatasetSpec spec = LastfmSpec(0.2);
  spec.num_tags = 8;  // keep C(8,2)=28 sets tractable for enumeration
  spec.num_topics = 4;
  SocialNetwork n = GenerateDataset(spec);
  const UserGroup group = UserGroup::kMid;
  const auto users = SampleUserGroup(n.graph, group, 3, 5);
  ASSERT_FALSE(users.empty());
  const UpperBoundContext ctx(n.topics);
  for (VertexId u : users) {
    LazySampler s1(n.graph, TestPolicy(8, 2), 11);
    LazySampler s2(n.graph, TestPolicy(8, 2), 11);
    const PitexResult enumr = SolveByEnumeration(n, {.user = u, .k = 2}, &s1);
    const PitexResult best =
        SolveByBestEffort(n, {.user = u, .k = 2}, ctx, &s2);
    // Same answer up to sampling noise on the influence value.
    EXPECT_NEAR(best.influence, enumr.influence,
                0.15 * std::max(1.0, enumr.influence))
        << "user " << u;
  }
}

TEST(BestEffortSolverTest, PrunesOnSparseModels) {
  DatasetSpec spec = DiggsSpec(0.05);  // density 0.08: strong pruning
  SocialNetwork n = GenerateDataset(spec);
  const auto users = SampleUserGroup(n.graph, UserGroup::kMid, 1, 5);
  ASSERT_FALSE(users.empty());
  const UpperBoundContext ctx(n.topics);
  LazySampler sampler(n.graph, TestPolicy(spec.num_tags, 2), 13);
  const PitexResult r =
      SolveByBestEffort(n, {.user = users[0], .k = 2}, ctx, &sampler);
  const double total_sets = TagSetEnumerator(spec.num_tags, 2).Count();
  // Far fewer full evaluations than C(50,2) = 1225.
  EXPECT_LT(static_cast<double>(r.sets_evaluated), 0.6 * total_sets);
  EXPECT_GT(r.sets_pruned, 0u);
}

TEST(BestEffortSolverTest, ReturnsKTags) {
  SocialNetwork n = MakeRunningExample();
  const UpperBoundContext ctx(n.topics);
  for (size_t k = 1; k <= 4; ++k) {
    LazySampler sampler(n.graph, TestPolicy(4, k), 17);
    const PitexResult r =
        SolveByBestEffort(n, {.user = 0, .k = k}, ctx, &sampler);
    EXPECT_EQ(r.tags.size(), k);
    // Tags are distinct and sorted.
    for (size_t i = 1; i < r.tags.size(); ++i) {
      EXPECT_LT(r.tags[i - 1], r.tags[i]);
    }
  }
}

TEST(SolverDeathTest, RejectsOutOfRangeK) {
  SocialNetwork n = MakeRunningExample();
  LazySampler sampler(n.graph, TestPolicy(4, 5), 3);
  EXPECT_DEATH(SolveByEnumeration(n, {.user = 0, .k = 5}, &sampler),
               "PITEX_CHECK");
}

TEST(SolverDeathTest, RejectsOutOfRangeUser) {
  SocialNetwork n = MakeRunningExample();
  LazySampler sampler(n.graph, TestPolicy(4, 2), 3);
  EXPECT_DEATH(SolveByEnumeration(n, {.user = 99, .k = 2}, &sampler),
               "PITEX_CHECK");
}

}  // namespace
}  // namespace pitex
