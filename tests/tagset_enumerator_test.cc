#include "src/core/tagset_enumerator.h"

#include <set>

#include <gtest/gtest.h>

namespace pitex {
namespace {

TEST(TagSetEnumeratorTest, EnumeratesAllCombinations) {
  std::set<std::vector<TagId>> seen;
  for (TagSetEnumerator it(5, 3); !it.Done(); it.Next()) {
    EXPECT_TRUE(seen.insert(it.Current()).second) << "duplicate combination";
  }
  EXPECT_EQ(seen.size(), 10u);  // C(5,3)
}

TEST(TagSetEnumeratorTest, CombinationsAreSortedAndDistinct) {
  for (TagSetEnumerator it(6, 4); !it.Done(); it.Next()) {
    const auto& c = it.Current();
    for (size_t i = 1; i < c.size(); ++i) EXPECT_LT(c[i - 1], c[i]);
  }
}

TEST(TagSetEnumeratorTest, LexicographicOrder) {
  TagSetEnumerator it(4, 2);
  EXPECT_EQ(it.Current(), (std::vector<TagId>{0, 1}));
  it.Next();
  EXPECT_EQ(it.Current(), (std::vector<TagId>{0, 2}));
  it.Next();
  EXPECT_EQ(it.Current(), (std::vector<TagId>{0, 3}));
  it.Next();
  EXPECT_EQ(it.Current(), (std::vector<TagId>{1, 2}));
}

TEST(TagSetEnumeratorTest, KEqualsN) {
  TagSetEnumerator it(3, 3);
  EXPECT_EQ(it.Current(), (std::vector<TagId>{0, 1, 2}));
  it.Next();
  EXPECT_TRUE(it.Done());
}

TEST(TagSetEnumeratorTest, KEqualsOne) {
  size_t count = 0;
  for (TagSetEnumerator it(7, 1); !it.Done(); it.Next()) ++count;
  EXPECT_EQ(count, 7u);
}

TEST(TagSetEnumeratorTest, CountMatchesBinomial) {
  EXPECT_NEAR(TagSetEnumerator(50, 3).Count(), 19600.0, 1e-3);
  EXPECT_NEAR(TagSetEnumerator(4, 4).Count(), 1.0, 1e-9);
}

}  // namespace
}  // namespace pitex
