#include "src/core/tagset_enumerator.h"

#include <set>

#include <gtest/gtest.h>

namespace pitex {
namespace {

TEST(TagSetEnumeratorTest, EnumeratesAllCombinations) {
  std::set<std::vector<TagId>> seen;
  for (TagSetEnumerator it(5, 3); !it.Done(); it.Next()) {
    EXPECT_TRUE(seen.insert(it.Current()).second) << "duplicate combination";
  }
  EXPECT_EQ(seen.size(), 10u);  // C(5,3)
}

TEST(TagSetEnumeratorTest, CombinationsAreSortedAndDistinct) {
  for (TagSetEnumerator it(6, 4); !it.Done(); it.Next()) {
    const auto& c = it.Current();
    for (size_t i = 1; i < c.size(); ++i) EXPECT_LT(c[i - 1], c[i]);
  }
}

TEST(TagSetEnumeratorTest, LexicographicOrder) {
  TagSetEnumerator it(4, 2);
  EXPECT_EQ(it.Current(), (std::vector<TagId>{0, 1}));
  it.Next();
  EXPECT_EQ(it.Current(), (std::vector<TagId>{0, 2}));
  it.Next();
  EXPECT_EQ(it.Current(), (std::vector<TagId>{0, 3}));
  it.Next();
  EXPECT_EQ(it.Current(), (std::vector<TagId>{1, 2}));
}

TEST(TagSetEnumeratorTest, KEqualsN) {
  TagSetEnumerator it(3, 3);
  EXPECT_EQ(it.Current(), (std::vector<TagId>{0, 1, 2}));
  it.Next();
  EXPECT_TRUE(it.Done());
}

TEST(TagSetEnumeratorTest, KEqualsOne) {
  size_t count = 0;
  for (TagSetEnumerator it(7, 1); !it.Done(); it.Next()) ++count;
  EXPECT_EQ(count, 7u);
}

TEST(TagSetEnumeratorTest, CountMatchesBinomial) {
  EXPECT_NEAR(TagSetEnumerator(50, 3).Count(), 19600.0, 1e-3);
  EXPECT_NEAR(TagSetEnumerator(4, 4).Count(), 1.0, 1e-9);
}

TEST(TagSetEnumeratorTest, CountIsExactForSmallInputs) {
  // Integer-exact values, not exp(lgamma) approximations: a double holds
  // these binomials exactly, so Count() must too.
  EXPECT_EQ(TagSetEnumerator(4, 2).Count(), 6.0);
  EXPECT_EQ(TagSetEnumerator(50, 3).Count(), 19600.0);
  EXPECT_EQ(TagSetEnumerator(52, 5).Count(), 2598960.0);
  EXPECT_EQ(TagSetEnumerator(36, 2).Count(), 630.0);
  EXPECT_EQ(TagSetEnumerator(40, 20).Count(), 137846528820.0);
  EXPECT_EQ(TagSetEnumerator(7, 1).Count(), 7.0);
  EXPECT_EQ(TagSetEnumerator(9, 9).Count(), 1.0);
}

TEST(TagSetEnumeratorTest, CountFallsBackToLogFormPastDoublePrecision) {
  // C(60, 30) = 118264581564861424 > 2^53: the log fallback kicks in and
  // must still land within relative rounding error.
  const double count = TagSetEnumerator(60, 30).Count();
  EXPECT_NEAR(count / 1.18264581564861424e17, 1.0, 1e-9);
}

}  // namespace
}  // namespace pitex
