#include "src/util/chernoff.h"

#include <cmath>

#include <gtest/gtest.h>

namespace pitex {
namespace {

TEST(LogBinomialTest, SmallValuesExact) {
  EXPECT_NEAR(std::exp(LogBinomial(5, 2)), 10.0, 1e-9);
  EXPECT_NEAR(std::exp(LogBinomial(10, 3)), 120.0, 1e-6);
  EXPECT_NEAR(std::exp(LogBinomial(50, 3)), 19600.0, 1e-3);
}

TEST(LogBinomialTest, DegenerateCases) {
  EXPECT_EQ(LogBinomial(5, 0), 0.0);
  EXPECT_EQ(LogBinomial(5, 5), 0.0);
  EXPECT_EQ(LogBinomial(5, -1), 0.0);
  EXPECT_EQ(LogBinomial(5, 7), 0.0);
}

TEST(LogBinomialTest, Symmetry) {
  EXPECT_NEAR(LogBinomial(20, 6), LogBinomial(20, 14), 1e-9);
}

TEST(LogBinomialTest, LargeValuesFinite) {
  const double v = LogBinomial(10000000, 250);
  EXPECT_TRUE(std::isfinite(v));
  EXPECT_GT(v, 0.0);
}

TEST(LogPhiTest, MatchesDirectSum) {
  // phi_3(6) = C(6,1)+C(6,2)+C(6,3) = 6+15+20 = 41.
  EXPECT_NEAR(std::exp(LogPhi(6, 3)), 41.0, 1e-6);
  // phi_1(n) = n.
  EXPECT_NEAR(std::exp(LogPhi(100, 1)), 100.0, 1e-6);
}

TEST(LogPhiTest, CapsAtN) {
  // K > n: phi = 2^n - 1.
  EXPECT_NEAR(std::exp(LogPhi(4, 10)), 15.0, 1e-6);
}

TEST(LogPhiTest, DominatedByLargestTerm) {
  // phi_K >= C(n, K).
  EXPECT_GE(LogPhi(50, 5), LogBinomial(50, 5));
}

TEST(LambdaTest, MatchesManualFormula) {
  const double eps = 0.7, delta = 1000;
  const double expected = (2.0 + eps) / (eps * eps) *
                          (std::log(delta) + LogBinomial(50, 3) +
                           std::log(2.0));
  EXPECT_NEAR(Lambda(eps, delta, 50, 3), expected, 1e-9);
}

TEST(LambdaTest, ShrinksWithLargerEps) {
  EXPECT_GT(Lambda(0.3, 1000, 50, 3), Lambda(0.9, 1000, 50, 3));
}

TEST(LambdaTest, GrowsWithDelta) {
  EXPECT_LT(Lambda(0.7, 10, 50, 3), Lambda(0.7, 10000, 50, 3));
}

TEST(BinomialExactTest, KnownValues) {
  EXPECT_EQ(BinomialExact(0, 0), 1u);
  EXPECT_EQ(BinomialExact(5, 0), 1u);
  EXPECT_EQ(BinomialExact(5, 5), 1u);
  EXPECT_EQ(BinomialExact(5, 2), 10u);
  EXPECT_EQ(BinomialExact(50, 3), 19600u);
  EXPECT_EQ(BinomialExact(52, 5), 2598960u);
  EXPECT_EQ(BinomialExact(60, 30), 118264581564861424u);
}

TEST(BinomialExactTest, SymmetricInK) {
  EXPECT_EQ(BinomialExact(40, 13), BinomialExact(40, 27));
}

TEST(BinomialExactTest, OverflowReturnsSentinel) {
  // C(100, 50) ~ 1e29 overflows uint64: the 0 sentinel tells callers to
  // fall back to LogBinomial.
  EXPECT_EQ(BinomialExact(100, 50), 0u);
  EXPECT_GT(LogBinomial(100, 50), 0.0);
}

TEST(BinomialExactTest, AgreesWithLogFormWhereBothApply) {
  for (int64_t n = 1; n <= 40; ++n) {
    for (int64_t k = 0; k <= n; ++k) {
      const uint64_t exact = BinomialExact(n, k);
      ASSERT_NE(exact, 0u) << n << " choose " << k;
      EXPECT_NEAR(std::exp(LogBinomial(n, k)) / static_cast<double>(exact),
                  1.0, 1e-9)
          << n << " choose " << k;
    }
  }
}

}  // namespace
}  // namespace pitex
