// Tests for the serving-tier admission controller
// (src/serve/admission.h): queue bounds, release pairing, token-bucket
// rate limiting against a synthetic clock, publish-priority headroom,
// and the stats snapshot.

#include "src/serve/admission.h"

#include <gtest/gtest.h>

#include <chrono>

namespace pitex {
namespace {

using Clock = AdmissionController::Clock;

Clock::time_point At(double seconds) {
  return Clock::time_point(std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(seconds)));
}

TEST(AdmissionTest, UnlimitedByDefault) {
  AdmissionController controller(AdmissionOptions{});
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(controller.TryAdmit(0, At(0.0)), AdmissionVerdict::kAdmit);
  }
  EXPECT_EQ(controller.GetStats().in_flight, 1000u);
}

TEST(AdmissionTest, QueueBoundSheds) {
  AdmissionOptions options;
  options.max_queue_depth = 4;
  AdmissionController controller(options);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(controller.TryAdmit(i, At(0.0)), AdmissionVerdict::kAdmit);
  }
  EXPECT_EQ(controller.TryAdmit(99, At(0.0)),
            AdmissionVerdict::kShedQueueFull);
  const AdmissionController::Stats stats = controller.GetStats();
  EXPECT_EQ(stats.admitted, 4u);
  EXPECT_EQ(stats.shed_queue_full, 1u);
  EXPECT_EQ(stats.in_flight, 4u);
}

TEST(AdmissionTest, ReleaseFreesSlots) {
  AdmissionOptions options;
  options.max_queue_depth = 2;
  AdmissionController controller(options);
  EXPECT_EQ(controller.TryAdmit(0, At(0.0)), AdmissionVerdict::kAdmit);
  EXPECT_EQ(controller.TryAdmit(1, At(0.0)), AdmissionVerdict::kAdmit);
  EXPECT_EQ(controller.TryAdmit(2, At(0.0)),
            AdmissionVerdict::kShedQueueFull);
  controller.Release(2);
  EXPECT_EQ(controller.TryAdmit(3, At(0.0)), AdmissionVerdict::kAdmit);
  EXPECT_EQ(controller.GetStats().in_flight, 1u);
}

TEST(AdmissionTest, PublishTightensTheBound) {
  AdmissionOptions options;
  options.max_queue_depth = 8;
  options.publish_headroom = 0.5;
  AdmissionController controller(options);
  controller.BeginPublish();
  // Effective bound is floor(8 * 0.5) = 4 while the publish runs.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(controller.TryAdmit(i, At(0.0)), AdmissionVerdict::kAdmit);
  }
  EXPECT_EQ(controller.TryAdmit(9, At(0.0)),
            AdmissionVerdict::kShedQueueFull);
  controller.EndPublish();
  // Full bound is back.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(controller.TryAdmit(10 + i, At(0.0)),
              AdmissionVerdict::kAdmit);
  }
  EXPECT_EQ(controller.TryAdmit(99, At(0.0)),
            AdmissionVerdict::kShedQueueFull);
}

TEST(AdmissionTest, PublishHeadroomNeverReachesZeroSlots) {
  AdmissionOptions options;
  options.max_queue_depth = 3;
  options.publish_headroom = 0.01;  // floor(3 * 0.01) = 0, clamped to 1
  AdmissionController controller(options);
  controller.BeginPublish();
  EXPECT_EQ(controller.TryAdmit(0, At(0.0)), AdmissionVerdict::kAdmit);
  EXPECT_EQ(controller.TryAdmit(1, At(0.0)),
            AdmissionVerdict::kShedQueueFull);
  controller.EndPublish();
}

TEST(AdmissionTest, TokenBucketLimitsBurst) {
  AdmissionOptions options;
  options.user_rate_limit = 10.0;  // 10 qps sustained
  options.user_burst = 3.0;
  AdmissionController controller(options);
  // The burst allowance admits 3 back-to-back, then the bucket is dry.
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(controller.TryAdmit(7, At(0.0)), AdmissionVerdict::kAdmit)
        << "i=" << i;
  }
  EXPECT_EQ(controller.TryAdmit(7, At(0.0)),
            AdmissionVerdict::kShedRateLimited);
  // 0.1 s later one token has refilled (10 qps).
  EXPECT_EQ(controller.TryAdmit(7, At(0.1)), AdmissionVerdict::kAdmit);
  EXPECT_EQ(controller.TryAdmit(7, At(0.1)),
            AdmissionVerdict::kShedRateLimited);
  // A long idle period refills at most the burst capacity.
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(controller.TryAdmit(7, At(100.0)), AdmissionVerdict::kAdmit);
  }
  EXPECT_EQ(controller.TryAdmit(7, At(100.0)),
            AdmissionVerdict::kShedRateLimited);
  EXPECT_EQ(controller.GetStats().shed_rate_limited, 3u);
}

TEST(AdmissionTest, RateLimitIsPerUser) {
  AdmissionOptions options;
  options.user_rate_limit = 1.0;
  options.user_burst = 1.0;
  // A large table so the two test users land in distinct buckets.
  options.user_buckets = 4096;
  AdmissionController controller(options);
  EXPECT_EQ(controller.TryAdmit(1, At(0.0)), AdmissionVerdict::kAdmit);
  EXPECT_EQ(controller.TryAdmit(1, At(0.0)),
            AdmissionVerdict::kShedRateLimited);
  // A different user has their own budget.
  EXPECT_EQ(controller.TryAdmit(2, At(0.0)), AdmissionVerdict::kAdmit);
}

TEST(AdmissionTest, ClockGoingBackwardsIsHarmless) {
  AdmissionOptions options;
  options.user_rate_limit = 1.0;
  options.user_burst = 2.0;
  AdmissionController controller(options);
  EXPECT_EQ(controller.TryAdmit(5, At(10.0)), AdmissionVerdict::kAdmit);
  // An earlier timestamp must not mint tokens (or underflow).
  EXPECT_EQ(controller.TryAdmit(5, At(1.0)), AdmissionVerdict::kAdmit);
  EXPECT_EQ(controller.TryAdmit(5, At(1.0)),
            AdmissionVerdict::kShedRateLimited);
}

TEST(AdmissionTest, DepthPercentilesTrackOfferedLoad) {
  AdmissionOptions options;
  options.max_queue_depth = 100;
  options.depth_window = 16;
  AdmissionController controller(options);
  for (int i = 0; i < 10; ++i) {
    ASSERT_EQ(controller.TryAdmit(i, At(0.0)), AdmissionVerdict::kAdmit);
  }
  const AdmissionController::Stats stats = controller.GetStats();
  // Samples are the depths observed at each arrival: 0, 1, ..., 9.
  EXPECT_EQ(stats.queue_depth.count, 10u);
  EXPECT_DOUBLE_EQ(stats.queue_depth.max, 9.0);
  EXPECT_DOUBLE_EQ(stats.queue_depth.mean, 4.5);
}

TEST(AdmissionTest, DepthWindowIsBounded) {
  AdmissionOptions options;
  options.depth_window = 8;
  AdmissionController controller(options);
  for (int i = 0; i < 100; ++i) {
    controller.TryAdmit(0, At(0.0));
    controller.Release(1);
  }
  EXPECT_EQ(controller.GetStats().queue_depth.count, 8u);
}

}  // namespace
}  // namespace pitex
