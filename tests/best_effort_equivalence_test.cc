// Equivalence tests for the zero-allocation best-effort search path
// (src/core/best_effort_solver.cc + search_arena + BoundScratch +
// MaterializedProbs): against verbatim copies of the pre-refactor solver
// and samplers retained below, the optimized path must return
// byte-identical rankings (ties included), byte-identical counters, and
// byte-identical sampler estimates across seeds and k — and, with a
// reused scratch, perform zero heap allocations at steady state.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <limits>
#include <new>
#include <queue>
#include <vector>

#include "running_example.h"
#include "src/core/best_effort_solver.h"
#include "src/core/upper_bound.h"
#include "src/sampling/estimator_common.h"
#include "src/sampling/lazy_sampler.h"
#include "src/sampling/mc_sampler.h"
#include "src/util/random.h"

// Global allocation counter: every operator new in the test binary bumps
// it, so "zero allocations" is measured, not assumed (same machinery as
// tests/pooled_layout_test.cc).
#if defined(__GNUC__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
namespace {
std::atomic<uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace pitex {
namespace {

// ---------------------------------------------------------------------------
// Retained reference implementations (pre-refactor, verbatim except for
// renames). Do not "modernize" these: their whole value is staying frozen.
// ---------------------------------------------------------------------------

class ReferenceLazySampler final : public InfluenceOracle {
 public:
  struct HeapEntry {
    uint64_t due;
    VertexId neighbor;
    double prob;
  };

  ReferenceLazySampler(const Graph& graph, SampleSizePolicy policy,
                       uint64_t seed)
      : graph_(graph),
        policy_(policy),
        rng_(seed),
        states_(graph.num_vertices()),
        state_epoch_(graph.num_vertices(), 0),
        visit_epoch_(graph.num_vertices(), 0) {}

  const char* Name() const override { return "REF-LAZY"; }

  Estimate EstimateInfluence(VertexId u, const EdgeProbFn& probs) override {
    const ReachableSet reach = ComputeReachable(graph_, probs, u);
    const auto rw = static_cast<double>(reach.vertices.size());
    const double threshold = policy_.StoppingThreshold();
    const uint64_t cap = policy_.SampleCap(reach.vertices.size());

    ++call_epoch_;
    Estimate result;
    uint64_t total_activated = 0;
    double sum_squares = 0.0;
    std::vector<VertexId> frontier;
    for (uint64_t i = 0; i < cap; ++i) {
      ++instance_epoch_;
      const uint64_t before = total_activated;
      frontier.assign(1, u);
      visit_epoch_[u] = instance_epoch_;
      while (!frontier.empty()) {
        const VertexId v = frontier.back();
        frontier.pop_back();
        ++total_activated;
        VertexState& state = StateOf(v, probs, cap, &result.edges_visited);
        ++state.visits;
        while (!state.heap.empty() &&
               state.heap.front().due == state.visits) {
          std::pop_heap(state.heap.begin(), state.heap.end(), DueGreater{});
          HeapEntry entry = state.heap.back();
          state.heap.pop_back();
          ++result.edges_visited;
          if (visit_epoch_[entry.neighbor] != instance_epoch_) {
            visit_epoch_[entry.neighbor] = instance_epoch_;
            frontier.push_back(entry.neighbor);
          }
          const uint64_t skip = rng_.NextGeometric(entry.prob);
          if (skip <= cap && state.visits + skip > state.visits) {
            entry.due = state.visits + skip;
            if (entry.due <= cap) {
              state.heap.push_back(entry);
              std::push_heap(state.heap.begin(), state.heap.end(),
                             DueGreater{});
            }
          }
        }
      }
      ++result.samples;
      const auto spread = static_cast<double>(total_activated - before);
      sum_squares += spread * spread;
      if (result.samples >= policy_.min_samples &&
          static_cast<double>(total_activated) / rw >= threshold) {
        break;
      }
    }
    result.influence =
        static_cast<double>(total_activated) /
        static_cast<double>(std::max<uint64_t>(result.samples, 1));
    result.std_error = SampleMeanStdError(
        static_cast<double>(total_activated), sum_squares, result.samples);
    return result;
  }

 private:
  struct DueGreater {
    bool operator()(const HeapEntry& a, const HeapEntry& b) const {
      return a.due > b.due;
    }
  };
  struct VertexState {
    uint64_t visits = 0;
    std::vector<HeapEntry> heap;
  };

  VertexState& StateOf(VertexId v, const EdgeProbFn& probs,
                       uint64_t sample_cap, uint64_t* edge_probes) {
    VertexState& state = states_[v];
    if (state_epoch_[v] == call_epoch_) return state;
    state_epoch_[v] = call_epoch_;
    state.visits = 0;
    state.heap.clear();
    for (const auto& [w, e] : graph_.OutEdges(v)) {
      const double p = probs.Prob(e);
      if (p <= 0.0) continue;
      ++*edge_probes;
      const uint64_t skip = rng_.NextGeometric(p);
      if (skip > sample_cap) continue;
      state.heap.push_back(HeapEntry{skip, w, p});
    }
    std::make_heap(state.heap.begin(), state.heap.end(), DueGreater{});
    return state;
  }

  const Graph& graph_;
  SampleSizePolicy policy_;
  Rng rng_;
  std::vector<VertexState> states_;
  std::vector<uint32_t> state_epoch_;
  std::vector<uint32_t> visit_epoch_;
  uint32_t call_epoch_ = 0;
  uint32_t instance_epoch_ = 0;
};

class ReferenceMcSampler final : public InfluenceOracle {
 public:
  ReferenceMcSampler(const Graph& graph, SampleSizePolicy policy,
                     uint64_t seed)
      : graph_(graph),
        policy_(policy),
        rng_(seed),
        visit_epoch_(graph.num_vertices(), 0) {}

  const char* Name() const override { return "REF-MC"; }

  Estimate EstimateInfluence(VertexId u, const EdgeProbFn& probs) override {
    const ReachableSet reach = ComputeReachable(graph_, probs, u);
    const auto rw = static_cast<double>(reach.vertices.size());
    const double threshold = policy_.StoppingThreshold();
    const uint64_t cap = policy_.SampleCap(reach.vertices.size());

    Estimate result;
    uint64_t total_activated = 0;
    double sum_squares = 0.0;
    std::vector<VertexId> stack;
    for (uint64_t i = 0; i < cap; ++i) {
      ++epoch_;
      stack.assign(1, u);
      visit_epoch_[u] = epoch_;
      uint64_t activated = 1;
      while (!stack.empty()) {
        const VertexId v = stack.back();
        stack.pop_back();
        for (const auto& [w, e] : graph_.OutEdges(v)) {
          const double p = probs.Prob(e);
          if (p <= 0.0) continue;
          ++result.edges_visited;
          if (visit_epoch_[w] == epoch_) continue;
          if (rng_.NextBernoulli(p)) {
            visit_epoch_[w] = epoch_;
            stack.push_back(w);
            ++activated;
          }
        }
      }
      total_activated += activated;
      sum_squares += static_cast<double>(activated) *
                     static_cast<double>(activated);
      ++result.samples;
      if (result.samples >= policy_.min_samples &&
          static_cast<double>(total_activated) / rw >= threshold) {
        break;
      }
    }
    result.influence =
        static_cast<double>(total_activated) /
        static_cast<double>(std::max<uint64_t>(result.samples, 1));
    result.std_error = SampleMeanStdError(
        static_cast<double>(total_activated), sum_squares, result.samples);
    return result;
  }

 private:
  const Graph& graph_;
  SampleSizePolicy policy_;
  Rng rng_;
  std::vector<uint32_t> visit_epoch_;
  uint32_t epoch_ = 0;
};

struct ReferenceHeapNode {
  double bound;
  std::vector<TagId> tags;  // sorted ascending
  bool operator<(const ReferenceHeapNode& other) const {
    return bound < other.bound;
  }
};

struct ReferenceWorstFirst {
  bool operator()(const RankedTagSet& a, const RankedTagSet& b) const {
    return a.influence > b.influence;
  }
};

// Verbatim pre-refactor SolveTopNByBestEffort: vector-owning heap nodes,
// allocating UpperBoundProbs / Posterior, no materialization.
std::vector<RankedTagSet> ReferenceSolveTopN(const SocialNetwork& network,
                                             const PitexQuery& query,
                                             const UpperBoundContext& context,
                                             InfluenceOracle* oracle,
                                             size_t n, PitexResult* stats) {
  PitexResult local_stats;
  PitexResult& counters = stats != nullptr ? *stats : local_stats;
  counters = PitexResult{};

  std::priority_queue<RankedTagSet, std::vector<RankedTagSet>,
                      ReferenceWorstFirst>
      best;
  auto incumbent = [&]() -> double {
    return best.size() < n ? -1.0 : best.top().influence;
  };

  std::priority_queue<ReferenceHeapNode> heap;
  heap.push(
      ReferenceHeapNode{std::numeric_limits<double>::infinity(), {}});
  const size_t num_tags = network.topics.num_tags();

  while (!heap.empty()) {
    ReferenceHeapNode node = heap.top();
    heap.pop();
    if (node.bound <= incumbent()) {
      ++counters.sets_pruned;
      break;
    }
    if (node.tags.size() == query.k) {
      const TopicPosterior posterior = network.topics.Posterior(node.tags);
      const PosteriorProbs probs(network.influence, posterior);
      const Estimate est = oracle->EstimateInfluence(query.user, probs);
      ++counters.sets_evaluated;
      counters.total_samples += est.samples;
      counters.edges_visited += est.edges_visited;
      best.push(RankedTagSet{std::move(node.tags), est.influence});
      if (best.size() > n) best.pop();
      continue;
    }
    const UpperBoundProbs bound_probs(network.influence, context, node.tags,
                                      query.k);
    const Estimate bound_est =
        oracle->EstimateInfluence(query.user, bound_probs);
    ++counters.bounds_evaluated;
    counters.total_samples += bound_est.samples;
    counters.edges_visited += bound_est.edges_visited;
    if (bound_est.influence <= incumbent()) {
      ++counters.sets_pruned;
      continue;
    }
    const TagId limit = node.tags.empty() ? static_cast<TagId>(num_tags)
                                          : node.tags.front();
    const auto start = static_cast<TagId>(query.k - node.tags.size() - 1);
    for (TagId w = start; w < limit; ++w) {
      ReferenceHeapNode child;
      child.bound = bound_est.influence;
      child.tags.reserve(node.tags.size() + 1);
      child.tags.push_back(w);
      child.tags.insert(child.tags.end(), node.tags.begin(),
                        node.tags.end());
      heap.push(std::move(child));
    }
  }

  std::vector<RankedTagSet> result;
  result.reserve(best.size());
  while (!best.empty()) {
    result.push_back(best.top());
    best.pop();
  }
  std::reverse(result.begin(), result.end());
  if (!result.empty()) {
    counters.tags = result.front().tags;
    counters.influence = result.front().influence;
  }
  return result;
}

// ---------------------------------------------------------------------------
// Fixtures
// ---------------------------------------------------------------------------

SampleSizePolicy PolicyFor(size_t num_tags, size_t k) {
  SampleSizePolicy policy;
  policy.num_tags = static_cast<int64_t>(num_tags);
  policy.k = static_cast<int64_t>(k);
  policy.use_phi = true;
  policy.min_samples = 32;
  policy.max_samples = 512;
  return policy;
}

// A denser random model than the running example: 6 tags over 4 topics on
// a 24-vertex random graph, so the search has real ties and pruning.
SocialNetwork MakeRandomNetwork(uint64_t seed) {
  Rng rng(seed);
  const size_t num_vertices = 24, num_topics = 4, num_tags = 6;
  SocialNetwork n;
  GraphBuilder gb(num_vertices);
  for (VertexId v = 0; v < num_vertices; ++v) {
    for (int j = 0; j < 3; ++j) {
      const auto w = static_cast<VertexId>(rng.NextBounded(num_vertices));
      if (w != v) gb.AddEdge(v, w);
    }
  }
  n.graph = gb.Build();

  n.topics = TopicModel(num_topics, num_tags);
  for (TagId w = 0; w < num_tags; ++w) {
    for (TopicId z = 0; z < num_topics; ++z) {
      if (rng.NextBernoulli(0.6)) {
        n.topics.SetTagTopic(w, z, 0.1 + 0.9 * rng.NextDouble());
      }
    }
  }
  InfluenceGraphBuilder ib(n.graph.num_edges());
  for (EdgeId e = 0; e < n.graph.num_edges(); ++e) {
    std::vector<EdgeTopicEntry> entries;
    for (TopicId z = 0; z < num_topics; ++z) {
      if (rng.NextBernoulli(0.5)) {
        entries.push_back({z, 0.5 * rng.NextDouble()});
      }
    }
    ib.SetEdgeTopics(e, entries);
  }
  n.influence = ib.Build();
  return n;
}

void ExpectSameRanking(const std::vector<RankedTagSet>& got,
                       const std::vector<RankedTagSet>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].tags, want[i].tags) << "rank " << i;
    EXPECT_EQ(got[i].influence, want[i].influence) << "rank " << i;
  }
}

void ExpectSameCounters(const PitexResult& got, const PitexResult& want) {
  EXPECT_EQ(got.tags, want.tags);
  EXPECT_EQ(got.influence, want.influence);
  EXPECT_EQ(got.sets_evaluated, want.sets_evaluated);
  EXPECT_EQ(got.sets_pruned, want.sets_pruned);
  EXPECT_EQ(got.bounds_evaluated, want.bounds_evaluated);
  EXPECT_EQ(got.total_samples, want.total_samples);
  EXPECT_EQ(got.edges_visited, want.edges_visited);
}

// ---------------------------------------------------------------------------
// Lemma-8 scratch path vs reference path
// ---------------------------------------------------------------------------

void CheckMultipliersMatch(const SocialNetwork& n, size_t k) {
  const UpperBoundContext ctx(n.topics);
  BoundScratch scratch;
  std::vector<std::vector<TagId>> partials = {{}};
  for (TagId a = 0; a < n.topics.num_tags(); ++a) {
    partials.push_back({a});
    for (TagId b = a + 1; b < n.topics.num_tags(); ++b) {
      partials.push_back({a, b});
    }
  }
  for (const auto& partial : partials) {
    if (partial.size() > k) continue;
    const std::vector<double> want = ctx.TopicMultipliers(partial, k);
    ctx.TopicMultipliersInto(partial, k, &scratch);
    ASSERT_EQ(scratch.multipliers.size(), want.size());
    for (size_t z = 0; z < want.size(); ++z) {
      EXPECT_EQ(scratch.multipliers[z], want[z])
          << "topic " << z << " partial size " << partial.size();
      EXPECT_EQ(scratch.compatible[z] != 0,
                ctx.Compatible(partial, static_cast<TopicId>(z)));
    }
  }
}

TEST(BestEffortEquivalenceTest, TopicMultipliersScratchBitIdentical) {
  CheckMultipliersMatch(MakeRunningExample(), 2);
  CheckMultipliersMatch(MakeRunningExample(), 3);
  for (uint64_t seed : {5u, 21u, 99u}) {
    CheckMultipliersMatch(MakeRandomNetwork(seed), 3);
  }
}

// ---------------------------------------------------------------------------
// Sampler estimates: materialized table vs virtual dispatch, new vs
// reference internals
// ---------------------------------------------------------------------------

template <typename NewSampler, typename RefSampler>
void CheckSamplerEquivalence(const SocialNetwork& n, uint64_t seed) {
  ASSERT_GE(n.topics.num_tags(), 4u);
  const SampleSizePolicy policy = PolicyFor(n.topics.num_tags(), 2);
  NewSampler via_table(n.graph, policy, seed);
  NewSampler via_virtual(n.graph, policy, seed);
  RefSampler reference(n.graph, policy, seed);
  MaterializedProbs materialized;
  for (TagId a = 0; a < 4; ++a) {
    for (TagId b = a + 1; b < 4; ++b) {
      const TagId tags[] = {a, b};
      const auto post = n.topics.Posterior(tags);
      const PosteriorProbs probs(n.influence, post);
      materialized.Assign(probs, n.num_edges());
      for (VertexId u = 0; u < n.num_vertices(); u += 3) {
        const Estimate got = via_table.EstimateInfluence(u, materialized);
        const Estimate plain = via_virtual.EstimateInfluence(u, probs);
        const Estimate want = reference.EstimateInfluence(u, probs);
        EXPECT_EQ(got.influence, want.influence) << "user " << u;
        EXPECT_EQ(got.std_error, want.std_error) << "user " << u;
        EXPECT_EQ(got.samples, want.samples) << "user " << u;
        EXPECT_EQ(got.edges_visited, want.edges_visited) << "user " << u;
        EXPECT_EQ(plain.influence, want.influence) << "user " << u;
        EXPECT_EQ(plain.samples, want.samples) << "user " << u;
        EXPECT_EQ(plain.edges_visited, want.edges_visited) << "user " << u;
      }
    }
  }
}

TEST(BestEffortEquivalenceTest, LazyEstimatesBitIdentical) {
  for (uint64_t seed : {3u, 7u, 13u}) {
    CheckSamplerEquivalence<LazySampler, ReferenceLazySampler>(
        MakeRunningExample(), seed);
    CheckSamplerEquivalence<LazySampler, ReferenceLazySampler>(
        MakeRandomNetwork(41), seed);
  }
}

TEST(BestEffortEquivalenceTest, McEstimatesBitIdentical) {
  for (uint64_t seed : {3u, 7u, 13u}) {
    CheckSamplerEquivalence<McSampler, ReferenceMcSampler>(
        MakeRunningExample(), seed);
    CheckSamplerEquivalence<McSampler, ReferenceMcSampler>(
        MakeRandomNetwork(41), seed);
  }
}

// ---------------------------------------------------------------------------
// Full solver: rankings, ties, and counters across seeds, k, and n
// ---------------------------------------------------------------------------

template <typename NewSampler, typename RefSampler>
void CheckSolverEquivalence(const SocialNetwork& n, size_t k, size_t top_n,
                            uint64_t seed) {
  const UpperBoundContext ctx(n.topics);
  const SampleSizePolicy policy = PolicyFor(n.topics.num_tags(), k);
  NewSampler new_sampler(n.graph, policy, seed);
  RefSampler ref_sampler(n.graph, policy, seed);
  const PitexQuery query{.user = 0, .k = k};
  PitexResult got_stats, want_stats;
  const auto got =
      SolveTopNByBestEffort(n, query, ctx, &new_sampler, top_n, &got_stats);
  const auto want =
      ReferenceSolveTopN(n, query, ctx, &ref_sampler, top_n, &want_stats);
  ExpectSameRanking(got, want);
  ExpectSameCounters(got_stats, want_stats);
}

TEST(BestEffortEquivalenceTest, LazyRankingsBitIdentical) {
  const SocialNetwork running = MakeRunningExample();
  const SocialNetwork random = MakeRandomNetwork(77);
  for (uint64_t seed : {3u, 7u, 11u, 19u}) {
    for (size_t k = 1; k <= 4; ++k) {
      for (size_t top_n : {size_t{1}, size_t{3}, size_t{10}}) {
        CheckSolverEquivalence<LazySampler, ReferenceLazySampler>(
            running, k, top_n, seed);
        CheckSolverEquivalence<LazySampler, ReferenceLazySampler>(
            random, k, top_n, seed);
      }
    }
  }
}

TEST(BestEffortEquivalenceTest, McRankingsBitIdentical) {
  const SocialNetwork running = MakeRunningExample();
  for (uint64_t seed : {3u, 11u}) {
    for (size_t k = 1; k <= 3; ++k) {
      CheckSolverEquivalence<McSampler, ReferenceMcSampler>(running, k, 2,
                                                            seed);
    }
  }
}

TEST(BestEffortEquivalenceTest, ScratchReuseAcrossQueryShapes) {
  // One scratch serving interleaved shapes (k and n change between
  // queries) must behave exactly like fresh state every time.
  const SocialNetwork n = MakeRandomNetwork(123);
  const UpperBoundContext ctx(n.topics);
  BestEffortScratch scratch;
  std::vector<RankedTagSet> out;
  const size_t shapes[][2] = {{2, 1}, {3, 4}, {1, 2}, {2, 3}, {3, 1}};
  for (const auto& shape : shapes) {
    const size_t k = shape[0], top_n = shape[1];
    const SampleSizePolicy policy = PolicyFor(n.topics.num_tags(), k);
    LazySampler new_sampler(n.graph, policy, 5);
    ReferenceLazySampler ref_sampler(n.graph, policy, 5);
    const PitexQuery query{.user = 2, .k = k};
    PitexResult got_stats, want_stats;
    SolveTopNByBestEffort(n, query, ctx, &new_sampler, top_n, &out,
                          &got_stats, &scratch);
    const auto want =
        ReferenceSolveTopN(n, query, ctx, &ref_sampler, top_n, &want_stats);
    ExpectSameRanking(out, want);
    ExpectSameCounters(got_stats, want_stats);
  }
}

// ---------------------------------------------------------------------------
// The zero-allocation guarantee
// ---------------------------------------------------------------------------

TEST(BestEffortEquivalenceTest, SolverAllocatesNothingAtSteadyState) {
  const SocialNetwork n = MakeRunningExample();
  const UpperBoundContext ctx(n.topics);
  const SampleSizePolicy policy = PolicyFor(n.topics.num_tags(), 2);
  LazySampler sampler(n.graph, policy, 9);
  BestEffortScratch scratch;
  std::vector<RankedTagSet> out;
  PitexResult stats;
  const PitexQuery query{.user = 0, .k = 2};

  // Warmup: grows every pooled capacity (arena, bound scratch, incumbent
  // slots, sampler heaps/reach) to this query shape's high-water mark.
  // The sampler's RNG advances between calls, so sizes wobble a little —
  // a generous warmup covers the envelope.
  double sink = 0.0;
  for (int i = 0; i < 50; ++i) {
    SolveTopNByBestEffort(n, query, ctx, &sampler, 3, &out, &stats, &scratch);
    sink += stats.influence;
  }

  const uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 25; ++i) {
    SolveTopNByBestEffort(n, query, ctx, &sampler, 3, &out, &stats, &scratch);
    sink += stats.influence;
  }
  const uint64_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after, before) << "best-effort steady state allocated";
  EXPECT_GT(sink, 0.0);
}

}  // namespace
}  // namespace pitex
