// Tests for incremental index maintenance (src/index/dynamic_index.h):
// bit-identical initial state vs. the static index, exact affected-set
// computation, repair correctness against fresh rebuilds and the exact
// oracle, and deterministic repair histories.

#include "src/index/dynamic_index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "running_example.h"
#include "src/datasets/synthetic.h"
#include "src/sampling/exact.h"

namespace pitex {
namespace {

RrIndexOptions DenseOptions() {
  RrIndexOptions options;
  options.theta_override = 60000;
  options.seed = 5;
  return options;
}

RrIndexOptions SmallOptions() {
  RrIndexOptions options;
  options.theta_override = 3000;
  options.seed = 5;
  return options;
}

// Compares through RRView so owning graphs (DynamicRrIndex) and pooled
// views (RrIndex) are interchangeable.
bool GraphsEqual(const RRView& a, const RRView& b) {
  if (a.root != b.root ||
      !std::ranges::equal(a.vertices, b.vertices) ||
      !std::ranges::equal(a.offsets, b.offsets) ||
      a.edges.size() != b.edges.size()) {
    return false;
  }
  for (size_t i = 0; i < a.edges.size(); ++i) {
    if (a.edges[i].head_local != b.edges[i].head_local ||
        a.edges[i].edge != b.edges[i].edge ||
        a.edges[i].threshold != b.edges[i].threshold) {
      return false;
    }
  }
  return true;
}

TEST(DynamicRrIndexTest, InitialStateMatchesStaticIndex) {
  const SocialNetwork n = MakeRunningExample();
  RrIndex static_index(n, SmallOptions());
  static_index.Build();
  DynamicRrIndex dynamic_index(n, SmallOptions());
  dynamic_index.Build();

  ASSERT_EQ(dynamic_index.num_graphs(), static_index.num_graphs());
  for (size_t i = 0; i < static_index.num_graphs(); ++i) {
    EXPECT_TRUE(GraphsEqual(dynamic_index.graph(i), static_index.graph(i)))
        << "graph " << i;
  }
  for (VertexId v = 0; v < n.num_vertices(); ++v) {
    EXPECT_TRUE(std::ranges::equal(dynamic_index.Containing(v),
                                   static_index.Containing(v)))
        << "vertex " << v;
  }
}

TEST(DynamicRrIndexTest, AffectedSetIsContainingHead) {
  const SocialNetwork n = MakeRunningExample();
  DynamicRrIndex index(n, SmallOptions());
  index.Build();

  const EdgeId e = 4;  // u4 -> u6
  const VertexId head = n.graph.Head(e);
  const size_t expected = index.Containing(head).size();

  const EdgeTopicEntry entries[] = {{2, 0.3}};
  index.UpdateEdgeTopics(e, entries);
  EXPECT_EQ(index.stats().graphs_examined, expected);
  EXPECT_LE(index.stats().graphs_changed, expected);
  EXPECT_EQ(index.stats().edges_updated, 1u);
  EXPECT_EQ(index.stats().update_batches, 1u);
}

TEST(DynamicRrIndexTest, UpdateSwapsInfluenceModel) {
  const SocialNetwork n = MakeRunningExample();
  DynamicRrIndex index(n, SmallOptions());
  index.Build();

  const EdgeTopicEntry entries[] = {{0, 0.9}};
  index.UpdateEdgeTopics(0, entries);
  EXPECT_DOUBLE_EQ(index.network().influence.MaxProb(0), 0.9);
  EXPECT_DOUBLE_EQ(index.network().influence.EdgeTopicProb(0, 0), 0.9);
  // Caller's network is untouched.
  EXPECT_DOUBLE_EQ(n.influence.MaxProb(0), 0.4);
}

TEST(DynamicRrIndexTest, DeletingEntriesZeroesEnvelope) {
  const SocialNetwork n = MakeRunningExample();
  DynamicRrIndex index(n, SmallOptions());
  index.Build();
  index.UpdateEdgeTopics(0, {});
  EXPECT_DOUBLE_EQ(index.network().influence.MaxProb(0), 0.0);
}

TEST(DynamicRrIndexTest, ZeroedOutEdgesKillInfluence) {
  const SocialNetwork n = MakeRunningExample();
  DynamicRrIndex index(n, DenseOptions());
  index.Build();

  const TagId tags[] = {2, 3};
  const auto post = n.topics.Posterior(tags);

  // Zero both of u1's out-edges: u1 can no longer influence anybody.
  std::vector<EdgeInfluenceUpdate> updates(2);
  updates[0].edge = 0;
  updates[1].edge = 1;
  index.ApplyUpdates(updates);

  // Only graphs rooted at u1 still count u1 (trivial self-reach), so the
  // estimate concentrates on exactly 1.0 up to root-sampling noise.
  const PosteriorProbs probs(index.network().influence, post);
  EXPECT_NEAR(index.EstimateInfluence(0, probs).influence, 1.0, 0.05);
}

TEST(DynamicRrIndexTest, RaisingProbabilityIncreasesSpread) {
  const SocialNetwork n = MakeRunningExample();
  DynamicRrIndex index(n, DenseOptions());
  index.Build();

  const TagId tags[] = {2, 3};
  const auto post = n.topics.Posterior(tags);
  const PosteriorProbs before_probs(index.network().influence, post);
  const double before = index.EstimateInfluence(0, before_probs).influence;

  // Crank edge u1 -> u3 (the gateway to the whole z3 cluster) to 1.
  const EdgeTopicEntry entries[] = {{1, 1.0}, {2, 1.0}};
  index.UpdateEdgeTopics(1, entries);
  const PosteriorProbs after_probs(index.network().influence, post);
  const double after = index.EstimateInfluence(0, after_probs).influence;
  EXPECT_GT(after, before);
}

TEST(DynamicRrIndexTest, RepairAgreesWithExactOracle) {
  const SocialNetwork n = MakeRunningExample();
  DynamicRrIndex index(n, DenseOptions());
  index.Build();

  // A batch of model changes across the graph.
  std::vector<EdgeInfluenceUpdate> updates(3);
  updates[0].edge = 1;
  updates[0].entries = {{1, 0.8}, {2, 0.2}};
  updates[1].edge = 4;
  updates[1].entries = {{2, 0.3}};
  updates[2].edge = 6;
  updates[2].entries = {{2, 0.9}};
  index.ApplyUpdates(updates);

  for (TagId a = 0; a < 4; ++a) {
    for (TagId b = a + 1; b < 4; ++b) {
      const TagId tags[] = {a, b};
      const auto post = index.network().topics.Posterior(tags);
      const PosteriorProbs probs(index.network().influence, post);
      const double exact =
          ExactInfluence(index.network().graph, probs, 0);
      const Estimate est = index.EstimateInfluence(0, probs);
      EXPECT_NEAR(est.influence, exact, 0.06 * exact + 0.02)
          << "tags " << a << "," << b;
    }
  }
}

TEST(DynamicRrIndexTest, RepairAgreesWithFreshRebuild) {
  DatasetSpec spec = LastfmSpec(0.4);
  spec.seed = 17;
  const SocialNetwork n = GenerateDataset(spec);

  RrIndexOptions options;
  options.theta_override = 40000;
  options.seed = 9;
  DynamicRrIndex dynamic_index(n, options);
  dynamic_index.Build();

  // Update a handful of edges.
  std::vector<EdgeInfluenceUpdate> updates;
  for (EdgeId e = 0; e < 10; ++e) {
    EdgeInfluenceUpdate update;
    update.edge = e * 97 % n.num_edges();
    update.entries = {{static_cast<TopicId>(e % n.topics.num_topics()),
                       0.05 + 0.02 * static_cast<double>(e % 5)}};
    updates.push_back(std::move(update));
  }
  dynamic_index.ApplyUpdates(updates);

  // A fresh index on the updated network must agree statistically.
  RrIndexOptions rebuild_options = options;
  rebuild_options.seed = 1234;  // independent randomness
  RrIndex rebuilt(dynamic_index.network(), rebuild_options);
  rebuilt.Build();

  const TagId tags[] = {0, 1};
  const auto post = dynamic_index.network().topics.Posterior(tags);
  const PosteriorProbs probs(dynamic_index.network().influence, post);
  const auto users = SampleUserGroup(n.graph, UserGroup::kHigh, 3, 7);
  for (const VertexId u : users) {
    const double repaired = dynamic_index.EstimateInfluence(u, probs).influence;
    const double fresh = rebuilt.EstimateInfluence(u, probs).influence;
    EXPECT_NEAR(repaired, fresh, 0.15 * fresh + 0.3) << "user " << u;
  }
}

TEST(DynamicRrIndexTest, LaterDuplicateWins) {
  const SocialNetwork n = MakeRunningExample();
  DynamicRrIndex index(n, SmallOptions());
  index.Build();

  std::vector<EdgeInfluenceUpdate> updates(2);
  updates[0].edge = 0;
  updates[0].entries = {{0, 0.1}};
  updates[1].edge = 0;
  updates[1].entries = {{0, 0.7}};
  index.ApplyUpdates(updates);
  // Updates apply sequentially; the final model reflects the last one.
  EXPECT_DOUBLE_EQ(index.network().influence.MaxProb(0), 0.7);
  EXPECT_EQ(index.stats().edges_updated, 2u);
}

TEST(DynamicRrIndexTest, EmptyBatchIsNoop) {
  const SocialNetwork n = MakeRunningExample();
  DynamicRrIndex index(n, SmallOptions());
  index.Build();
  index.ApplyUpdates({});
  EXPECT_EQ(index.stats().update_batches, 0u);
  EXPECT_EQ(index.stats().graphs_examined, 0u);
}

TEST(DynamicRrIndexTest, RepairHistoryIsDeterministic) {
  const SocialNetwork n = MakeRunningExample();
  DynamicRrIndex a(n, SmallOptions());
  DynamicRrIndex b(n, SmallOptions());
  a.Build();
  b.Build();

  for (int round = 0; round < 3; ++round) {
    EdgeInfluenceUpdate update;
    update.edge = static_cast<EdgeId>(round * 2 % 7);
    update.entries = {{2, 0.1 + 0.2 * round}};
    a.ApplyUpdates(std::span(&update, 1));
    b.ApplyUpdates(std::span(&update, 1));
  }
  ASSERT_EQ(a.num_graphs(), b.num_graphs());
  for (size_t i = 0; i < a.num_graphs(); ++i) {
    EXPECT_TRUE(GraphsEqual(a.graph(i), b.graph(i))) << "graph " << i;
  }
}

TEST(DynamicRrIndexTest, NoopUpdateLeavesEveryGraphIdentical) {
  // Coin coupling makes a same-probability update a structural no-op:
  // live edges satisfy c < p_new = p_old, dead edges resurrect with
  // probability 0. (Full regeneration — the naive repair — would redraw
  // the graphs and, worse, bias the ensemble toward worlds that never
  // probed the edge.)
  const SocialNetwork n = MakeRunningExample();
  DynamicRrIndex index(n, SmallOptions());
  index.Build();
  std::vector<RRGraph> snapshot;
  for (size_t i = 0; i < index.num_graphs(); ++i) {
    snapshot.push_back(index.graph(i));
  }

  std::vector<EdgeTopicEntry> same(n.influence.EdgeTopics(1).begin(),
                                   n.influence.EdgeTopics(1).end());
  index.UpdateEdgeTopics(1, same);

  EXPECT_GT(index.stats().graphs_examined, 0u);
  EXPECT_EQ(index.stats().graphs_changed, 0u);
  for (size_t i = 0; i < index.num_graphs(); ++i) {
    ASSERT_TRUE(GraphsEqual(index.graph(i), snapshot[i])) << "graph " << i;
  }
}

TEST(DynamicRrIndexTest, ProbabilityDropNeverGrowsGraphs) {
  // Lowering an envelope can only kill the edge (c >= p_new) and prune;
  // every repaired graph must be a sub-structure of its old self.
  const SocialNetwork n = MakeRunningExample();
  DynamicRrIndex index(n, SmallOptions());
  index.Build();
  std::vector<size_t> before;
  for (size_t i = 0; i < index.num_graphs(); ++i) {
    before.push_back(index.graph(i).vertices.size());
  }

  const EdgeTopicEntry entries[] = {{2, 0.1}};  // e4 was z3:0.8
  index.UpdateEdgeTopics(4, entries);
  for (size_t i = 0; i < index.num_graphs(); ++i) {
    EXPECT_LE(index.graph(i).vertices.size(), before[i]) << "graph " << i;
  }
}

TEST(DynamicRrIndexTest, ProbabilityRaiseNeverShrinksGraphs) {
  const SocialNetwork n = MakeRunningExample();
  DynamicRrIndex index(n, SmallOptions());
  index.Build();
  std::vector<size_t> before;
  size_t total_before = 0;
  for (size_t i = 0; i < index.num_graphs(); ++i) {
    before.push_back(index.graph(i).vertices.size());
    total_before += before.back();
  }

  const EdgeTopicEntry entries[] = {{2, 0.95}};  // e4 raised from 0.8
  index.UpdateEdgeTopics(4, entries);
  size_t total_after = 0;
  for (size_t i = 0; i < index.num_graphs(); ++i) {
    EXPECT_GE(index.graph(i).vertices.size(), before[i]) << "graph " << i;
    total_after += index.graph(i).vertices.size();
  }
  // With thousands of graphs, some resurrection must have occurred.
  EXPECT_GT(total_after, total_before);
}

TEST(DynamicRrIndexTest, ContainmentStaysConsistentAfterRepairs) {
  DatasetSpec spec = LastfmSpec(0.3);
  spec.seed = 23;
  const SocialNetwork n = GenerateDataset(spec);
  RrIndexOptions options;
  options.theta_override = 2000;
  DynamicRrIndex index(n, options);
  index.Build();

  for (int round = 0; round < 5; ++round) {
    EdgeInfluenceUpdate update;
    update.edge = static_cast<EdgeId>((round * 131) % n.num_edges());
    update.entries = {{static_cast<TopicId>(round % n.topics.num_topics()),
                       0.2}};
    index.ApplyUpdates(std::span(&update, 1));
  }

  // Invariant: v's containment list holds exactly the graphs whose
  // vertex set includes v.
  size_t listed = 0;
  for (VertexId v = 0; v < n.num_vertices(); ++v) {
    for (const uint32_t id : index.Containing(v)) {
      EXPECT_TRUE(index.graph(id).LocalIndex(v).has_value());
      ++listed;
    }
  }
  size_t contained = 0;
  for (size_t i = 0; i < index.num_graphs(); ++i) {
    contained += index.graph(i).vertices.size();
  }
  EXPECT_EQ(listed, contained);
}

}  // namespace
}  // namespace pitex
