// Replication unit + single-process failover tests
// (docs/robustness.md, "Replication & failover"). Pins, bottom-up:
// the frame codec's byte-level contracts (torn prefixes read as
// kNeedMore at every cut, like wal_test.cc's torn-tail sweep; damaged
// bytes never decode into a frame that was not sent), the in-process
// transport's close/drain semantics, and the full shipper->follower
// pipeline: bootstrap from a shipped checkpoint, dense replay,
// convergence under duplicated/dropped/reordered/torn shipments, and
// heartbeat-loss promotion with term fencing of the deposed primary.
// The cross-process SIGKILL/SIGSTOP drills live in
// tests/failover_drill_test.cc.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "running_example.h"
#include "src/obs/journal.h"
#include "src/serve/pitex_service.h"
#include "src/serve/replication.h"
#include "src/serve/term_authority.h"
#include "src/util/failpoint.h"

namespace pitex {
namespace {

namespace fs = std::filesystem;

bool WaitUntil(const std::function<bool()>& pred, int timeout_ms = 20000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return pred();
}

class ReplicationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FailpointRegistry::Instance().DisableAll();
    root_ = (fs::temp_directory_path() /
             ("pitex_replication_" +
              std::string(::testing::UnitTest::GetInstance()
                              ->current_test_info()
                              ->name())))
                .string();
    fs::remove_all(root_);
    fs::create_directories(root_);
  }
  void TearDown() override {
    FailpointRegistry::Instance().DisableAll();
    fs::remove_all(root_);
  }

  static ServeOptions DurableOptions(const std::string& dir,
                                     uint64_t checkpoint_every = 2) {
    ServeOptions options;
    options.engine.method = Method::kIndexEst;
    options.engine.index_theta_per_vertex = 150.0;
    options.engine.seed = 5;
    options.num_threads = 2;
    options.mode = ScheduleMode::kWorkStealing;
    options.enable_updates = true;
    options.publish_backoff_initial_ms = 0.1;
    options.publish_backoff_max_ms = 1.0;
    options.durability_dir = dir;
    options.checkpoint_every = checkpoint_every;
    return options;
  }

  static EdgeInfluenceUpdate MakeUpdate(const SocialNetwork& n,
                                        uint64_t round) {
    EdgeInfluenceUpdate update;
    update.edge = static_cast<EdgeId>(round % n.num_edges());
    update.entries = {{static_cast<TopicId>(round % n.topics.num_topics()),
                       0.2 + 0.1 * static_cast<double>(round % 5)}};
    return update;
  }

  static void ExpectBitIdentical(PitexService& got, PitexService& want,
                                 const SocialNetwork& n) {
    for (VertexId user = 0; user < n.num_vertices(); ++user) {
      const PitexQuery query = {.user = user, .k = 2};
      const ServedResult g = got.Submit(query).get();
      const ServedResult w = want.Submit(query).get();
      ASSERT_EQ(g.status, ServeStatus::kOk);
      ASSERT_EQ(g.result.tags, w.result.tags) << "user " << user;
      ASSERT_EQ(g.result.influence, w.result.influence) << "user " << user;
    }
  }

  std::string root_;
};

// ---------------------------------------------------------------------------
// Frame codec

TEST_F(ReplicationTest, TypedPayloadsRoundTrip) {
  ReplRecordMsg record;
  record.term = 7;
  record.lsn = 42;
  record.updates = {EdgeInfluenceUpdate{3, {{1, 0.25}, {2, 0.5}}},
                    EdgeInfluenceUpdate{9, {}}};
  const ReplFrame record_frame = EncodeRecordMsg(record);
  ReplRecordMsg record2;
  ASSERT_TRUE(DecodeRecordMsg(record_frame, &record2));
  EXPECT_EQ(record2.term, 7u);
  EXPECT_EQ(record2.lsn, 42u);
  ASSERT_EQ(record2.updates.size(), 2u);
  EXPECT_EQ(record2.updates[0].edge, 3u);
  ASSERT_EQ(record2.updates[0].entries.size(), 2u);
  EXPECT_EQ(record2.updates[0].entries[1].topic, 2u);
  EXPECT_EQ(record2.updates[0].entries[1].prob, 0.5);
  EXPECT_TRUE(record2.updates[1].entries.empty());

  ReplCheckpointMsg cp;
  cp.term = 3;
  cp.checkpoint.present = true;
  cp.checkpoint.lsn = 11;
  cp.checkpoint.manifest_bytes = std::string("MAN\0IFEST", 9);
  cp.checkpoint.snapshot_name = "checkpoint-000b.idx";
  cp.checkpoint.snapshot_bytes = std::string(4096, '\x5a');
  ReplCheckpointMsg cp2;
  ASSERT_TRUE(DecodeCheckpointMsg(EncodeCheckpointMsg(cp), &cp2));
  EXPECT_TRUE(cp2.checkpoint.present);
  EXPECT_EQ(cp2.checkpoint.lsn, 11u);
  EXPECT_EQ(cp2.checkpoint.manifest_bytes, cp.checkpoint.manifest_bytes);
  EXPECT_EQ(cp2.checkpoint.snapshot_name, cp.checkpoint.snapshot_name);
  EXPECT_EQ(cp2.checkpoint.snapshot_bytes, cp.checkpoint.snapshot_bytes);

  ReplHeartbeatMsg beat{5, 99};
  ReplHeartbeatMsg beat2;
  ASSERT_TRUE(DecodeHeartbeatMsg(EncodeHeartbeatMsg(beat), &beat2));
  EXPECT_EQ(beat2.term, 5u);
  EXPECT_EQ(beat2.durable_lsn, 99u);

  uint64_t lsn = 0;
  ASSERT_TRUE(DecodeAckMsg(EncodeAckMsg(17), &lsn));
  EXPECT_EQ(lsn, 17u);
  ASSERT_TRUE(DecodeResyncMsg(EncodeResyncMsg(23), &lsn));
  EXPECT_EQ(lsn, 23u);

  // Type confusion is rejected, not misparsed.
  EXPECT_FALSE(DecodeAckMsg(EncodeResyncMsg(1), &lsn));
  EXPECT_FALSE(DecodeRecordMsg(EncodeHeartbeatMsg(beat), &record2));
}

TEST_F(ReplicationTest, TornFrameAtEveryByteOffsetReadsAsNeedMore) {
  // The stream analogue of wal_test.cc's torn-tail sweep: a connection
  // can die after any byte, and every proper prefix of a valid frame
  // must read as "incomplete" -- never as damage, never as a frame.
  ReplHeartbeatMsg beat{1, 123456789};
  const std::string bytes = EncodeReplFrame(EncodeHeartbeatMsg(beat));
  ASSERT_GT(bytes.size(), 20u);
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    ReplFrame frame;
    size_t consumed = 0;
    EXPECT_EQ(DecodeReplFrame(std::string_view(bytes).substr(0, cut), &frame,
                              &consumed),
              ReplDecodeStatus::kNeedMore)
        << "cut at byte " << cut;
  }
  ReplFrame frame;
  size_t consumed = 0;
  ASSERT_EQ(DecodeReplFrame(bytes, &frame, &consumed),
            ReplDecodeStatus::kFrame);
  EXPECT_EQ(consumed, bytes.size());
  ReplHeartbeatMsg beat2;
  ASSERT_TRUE(DecodeHeartbeatMsg(frame, &beat2));
  EXPECT_EQ(beat2.durable_lsn, 123456789u);
}

TEST_F(ReplicationTest, FlippedByteNeverDecodesIntoAFrameThatWasNotSent) {
  // Corrupt every byte of a two-frame stream in turn and decode to
  // exhaustion. The decoder may lose frames (the resync protocol
  // resends those) but must never ACCEPT bytes that differ from what
  // the sender framed -- acceptance of damage would replicate garbage.
  const std::string a = EncodeReplFrame(EncodeAckMsg(1111));
  const std::string b = EncodeReplFrame(EncodeResyncMsg(2222));
  const std::string clean = a + b;
  for (size_t flip = 0; flip < clean.size(); ++flip) {
    for (const unsigned char delta : {0x01, 0x80}) {
      std::string bytes = clean;
      bytes[flip] = static_cast<char>(bytes[flip] ^ delta);
      size_t decoded = 0;
      bool damage_seen = false;
      std::string_view rest(bytes);
      while (!rest.empty()) {
        ReplFrame frame;
        size_t consumed = 0;
        const ReplDecodeStatus status =
            DecodeReplFrame(rest, &frame, &consumed);
        if (status == ReplDecodeStatus::kFrame) {
          const std::string reencoded = EncodeReplFrame(frame);
          EXPECT_TRUE(reencoded == a || reencoded == b)
              << "flip at byte " << flip << " decoded a frame nobody sent";
          rest.remove_prefix(consumed);
          ++decoded;
        } else if (status == ReplDecodeStatus::kBad) {
          damage_seen = true;
          rest.remove_prefix(ReplResyncSkip(rest));
        } else {
          break;  // kNeedMore at end of buffer: torn remainder
        }
      }
      EXPECT_TRUE(damage_seen || decoded < 2)
          << "flip at byte " << flip
          << " was consumed silently with both frames intact";
      EXPECT_LE(decoded, 2u);
    }
  }
}

// ---------------------------------------------------------------------------
// In-process transport

TEST_F(ReplicationTest, InProcessTransportDeliversBothDirections) {
  auto [a, b] = MakeInProcessTransportPair();
  ASSERT_TRUE(a->Send(EncodeAckMsg(5)));
  ASSERT_TRUE(b->Send(EncodeResyncMsg(9)));
  ReplFrame frame;
  ASSERT_EQ(b->Recv(&frame, std::chrono::milliseconds(1000)),
            ReplicationTransport::RecvStatus::kFrame);
  uint64_t lsn = 0;
  ASSERT_TRUE(DecodeAckMsg(frame, &lsn));
  EXPECT_EQ(lsn, 5u);
  ASSERT_EQ(a->Recv(&frame, std::chrono::milliseconds(1000)),
            ReplicationTransport::RecvStatus::kFrame);
  ASSERT_TRUE(DecodeResyncMsg(frame, &lsn));
  EXPECT_EQ(lsn, 9u);
  // Nothing pending: a short receive times out.
  EXPECT_EQ(a->Recv(&frame, std::chrono::milliseconds(5)),
            ReplicationTransport::RecvStatus::kTimeout);
}

TEST_F(ReplicationTest, InProcessTransportDrainsThenReportsClosed) {
  auto [a, b] = MakeInProcessTransportPair();
  ASSERT_TRUE(a->Send(EncodeAckMsg(1)));
  // A torn trailing frame (sender died mid-send) is discarded at close,
  // exactly like the WAL's torn tail.
  const std::string torn = EncodeReplFrame(EncodeAckMsg(2));
  ASSERT_TRUE(a->SendBytes(torn.substr(0, torn.size() / 2)));
  a->Close();
  ReplFrame frame;
  ASSERT_EQ(b->Recv(&frame, std::chrono::milliseconds(1000)),
            ReplicationTransport::RecvStatus::kFrame);
  uint64_t lsn = 0;
  ASSERT_TRUE(DecodeAckMsg(frame, &lsn));
  EXPECT_EQ(lsn, 1u);
  EXPECT_EQ(b->Recv(&frame, std::chrono::milliseconds(1000)),
            ReplicationTransport::RecvStatus::kClosed);
  EXPECT_FALSE(b->Send(EncodeAckMsg(3)));
}

// ---------------------------------------------------------------------------
// Shipper -> follower pipeline

struct ReplicaPair {
  InProcessTermAuthority authority;
  std::unique_ptr<ReplicationTransport> primary_end;
  std::unique_ptr<ReplicationTransport> follower_end;
  std::unique_ptr<PitexService> primary;
  std::unique_ptr<WalShipper> shipper;
  std::unique_ptr<FollowerService> follower;
};

TEST_F(ReplicationTest, FollowerBootstrapsReplaysAndMatchesBitForBit) {
  const SocialNetwork n = MakeRunningExample();
  ReplicaPair pair;
  std::tie(pair.primary_end, pair.follower_end) =
      MakeInProcessTransportPair();

  // Seed the primary with history BEFORE the shipper exists, so the
  // follower must bootstrap from a real checkpoint (checkpoint_every=2
  // guarantees one) plus a shipped WAL tail.
  ServeOptions primary_options = DurableOptions(root_ + "/primary");
  primary_options.term_authority = &pair.authority;
  primary_options.term = 1;
  pair.primary =
      std::make_unique<PitexService>(&n, primary_options);
  pair.primary->Start();
  constexpr uint64_t kSeedRounds = 5;
  for (uint64_t i = 0; i < kSeedRounds; ++i) {
    std::vector<EdgeInfluenceUpdate> batch{MakeUpdate(n, i)};
    ASSERT_NE(pair.primary->ApplyUpdates(batch), 0u);
  }

  WalShipperOptions ship;
  ship.wal_dir = root_ + "/primary";
  ship.term = 1;
  pair.shipper = std::make_unique<WalShipper>(
      pair.primary.get(), pair.primary_end.get(), ship);
  pair.shipper->Start();

  FollowerOptions fo;
  fo.serve = DurableOptions(root_ + "/follower");
  fo.heartbeat_timeout_ms = 60000;  // no promotion in this test
  fo.authority = &pair.authority;
  pair.follower = std::make_unique<FollowerService>(
      &n, pair.follower_end.get(), fo);
  std::string error;
  ASSERT_TRUE(pair.follower->Start(&error)) << error;

  // More traffic while the link is live.
  constexpr uint64_t kLiveRounds = 4;
  for (uint64_t i = kSeedRounds; i < kSeedRounds + kLiveRounds; ++i) {
    std::vector<EdgeInfluenceUpdate> batch{MakeUpdate(n, i)};
    ASSERT_NE(pair.primary->ApplyUpdates(batch), 0u);
  }
  const uint64_t total = kSeedRounds + kLiveRounds;
  ASSERT_TRUE(WaitUntil([&] {
    return pair.follower->applied_lsn() >= total;
  })) << "follower stuck at lsn " << pair.follower->applied_lsn();
  ASSERT_TRUE(WaitUntil([&] { return pair.shipper->acked_lsn() >= total; }));

  // The whole time the follower was also serving reads; now it must be
  // bit-identical to a never-replicated reference.
  PitexService reference(&n, DurableOptions(""));
  reference.Start();
  for (uint64_t i = 0; i < total; ++i) {
    std::vector<EdgeInfluenceUpdate> batch{MakeUpdate(n, i)};
    ASSERT_NE(reference.ApplyUpdates(batch), 0u);
  }
  ExpectBitIdentical(pair.follower->service(), reference, n);

  // Replication observability: watermarks and lag export through the
  // metrics registries on both sides.
  const obs::MetricsSnapshot primary_metrics =
      pair.primary->metrics().Snapshot();
  EXPECT_GE(primary_metrics.CounterValue("pitex_repl_records_shipped_total"),
            kLiveRounds);
  EXPECT_EQ(primary_metrics.GaugeValue("pitex_repl_acked_lsn"),
            static_cast<int64_t>(total));
  EXPECT_EQ(primary_metrics.GaugeValue("pitex_term"), 1);
  const obs::MetricsSnapshot follower_metrics =
      pair.follower->service().metrics().Snapshot();
  EXPECT_EQ(follower_metrics.GaugeValue("pitex_repl_applied_lsn"),
            static_cast<int64_t>(total));
  EXPECT_EQ(follower_metrics.GaugeValue("pitex_repl_promoted"), 0);
  ASSERT_TRUE(WaitUntil([&] {
    return pair.follower->service()
               .metrics()
               .Snapshot()
               .GaugeValue("pitex_repl_lag_lsns") == 0;
  }));

  pair.shipper->Stop();
  pair.follower->Stop();
}

TEST_F(ReplicationTest, FollowerConvergesThroughTransportFaults) {
#if !PITEX_FAILPOINTS_ENABLED
  GTEST_SKIP() << "fail points compiled out (-DPITEX_FAILPOINTS=OFF)";
#endif
  // Duplicate, drop, tear and reorder shipments (fail points in the
  // shipper's send path); the checksum + dense-LSN rules must detect
  // every one, the resync protocol must heal, and the converged
  // follower must still be bit-identical.
  const SocialNetwork n = MakeRunningExample();
  ReplicaPair pair;
  std::tie(pair.primary_end, pair.follower_end) =
      MakeInProcessTransportPair();
  ServeOptions primary_options =
      DurableOptions(root_ + "/primary", /*checkpoint_every=*/0);
  primary_options.term_authority = &pair.authority;
  pair.primary = std::make_unique<PitexService>(&n, primary_options);

  WalShipperOptions ship;
  ship.wal_dir = root_ + "/primary";
  pair.shipper = std::make_unique<WalShipper>(
      pair.primary.get(), pair.primary_end.get(), ship);
  pair.shipper->Start();

  FollowerOptions fo;
  fo.serve = DurableOptions(root_ + "/follower", /*checkpoint_every=*/0);
  fo.heartbeat_timeout_ms = 60000;  // faults must not trigger promotion
  fo.authority = &pair.authority;
  pair.follower = std::make_unique<FollowerService>(
      &n, pair.follower_end.get(), fo);
  std::string error;
  ASSERT_TRUE(pair.follower->Start(&error)) << error;

  // Four fault phases, each healed before the next. Every phase arms
  // its point for EVERY outbound frame, applies 3 records, and waits
  // until the shipper has (faultily) shipped them — so each fault is
  // guaranteed to hit real records, not just heartbeats — then disarms
  // and waits for the resync/dedup machinery to converge.
  uint64_t applied_rounds = 0;
  const auto run_phase = [&](const char* point) {
    FailpointConfig config;
    config.mode = FailpointMode::kError;
    FailpointRegistry::Instance().Enable(point, config);
    for (uint64_t i = 0; i < 3; ++i, ++applied_rounds) {
      std::vector<EdgeInfluenceUpdate> batch{MakeUpdate(n, applied_rounds)};
      ASSERT_NE(pair.primary->ApplyUpdates(batch), 0u);
    }
    // The shipping cursor reaching the batch proves the armed fault bit
    // every one of these records (resync rewinds may bounce it briefly;
    // it must still get there).
    ASSERT_TRUE(WaitUntil([&] {
      return pair.shipper->shipped_lsn() >= applied_rounds;
    })) << point << ": shipper stuck at lsn " << pair.shipper->shipped_lsn();
    FailpointRegistry::Instance().Disable(point);
    ASSERT_TRUE(WaitUntil([&] {
      return pair.follower->applied_lsn() >= applied_rounds;
    })) << point << ": follower stuck at lsn "
        << pair.follower->applied_lsn();
  };
  run_phase("repl/ship_dup");    // replays dropped by the dense-LSN rule
  run_phase("repl/ship_torn");   // fragments rejected by checksum, resynced
  run_phase("repl/ship_drop");   // heartbeat-stall resync heals lost tails
  run_phase("repl/ship_reorder");  // held-back frames arrive as gaps
  const uint64_t kRounds = applied_rounds;
  ASSERT_TRUE(WaitUntil([&] { return pair.shipper->acked_lsn() >= kRounds; }));

  PitexService reference(&n, DurableOptions("", 0));
  reference.Start();
  for (uint64_t i = 0; i < kRounds; ++i) {
    std::vector<EdgeInfluenceUpdate> batch{MakeUpdate(n, i)};
    ASSERT_NE(reference.ApplyUpdates(batch), 0u);
  }
  ExpectBitIdentical(pair.follower->service(), reference, n);

  // The fault ledger proves the faults actually bit: duplicates were
  // dropped, damage was rejected, resyncs were requested AND served.
  const obs::MetricsSnapshot fm =
      pair.follower->service().metrics().Snapshot();
  EXPECT_GT(fm.CounterValue("pitex_repl_duplicates_dropped_total"), 0u);
  EXPECT_GT(fm.CounterValue("pitex_repl_frames_rejected_total"), 0u);
  EXPECT_GT(fm.CounterValue("pitex_repl_resync_requests_total"), 0u);
  const obs::MetricsSnapshot pm = pair.primary->metrics().Snapshot();
  EXPECT_GT(pm.CounterValue("pitex_repl_resyncs_served_total"), 0u);
  EXPECT_EQ(fm.GaugeValue("pitex_repl_promoted"), 0);

  pair.shipper->Stop();
  pair.follower->Stop();
}

TEST_F(ReplicationTest, HeartbeatLossPromotesFollowerAndFencesDeposedPrimary) {
#if !PITEX_FAILPOINTS_ENABLED
  GTEST_SKIP() << "fail points compiled out (-DPITEX_FAILPOINTS=OFF)";
#endif
  const SocialNetwork n = MakeRunningExample();
  ReplicaPair pair;
  std::tie(pair.primary_end, pair.follower_end) =
      MakeInProcessTransportPair();
  ServeOptions primary_options = DurableOptions(root_ + "/primary");
  primary_options.term_authority = &pair.authority;
  primary_options.term = 1;
  pair.primary = std::make_unique<PitexService>(&n, primary_options);

  WalShipperOptions ship;
  ship.wal_dir = root_ + "/primary";
  pair.shipper = std::make_unique<WalShipper>(
      pair.primary.get(), pair.primary_end.get(), ship);
  pair.shipper->Start();

  FollowerOptions fo;
  fo.serve = DurableOptions(root_ + "/follower");
  fo.heartbeat_timeout_ms = 150;
  fo.authority = &pair.authority;
  pair.follower = std::make_unique<FollowerService>(
      &n, pair.follower_end.get(), fo);
  std::string error;
  ASSERT_TRUE(pair.follower->Start(&error)) << error;

  constexpr uint64_t kRounds = 3;
  for (uint64_t i = 0; i < kRounds; ++i) {
    std::vector<EdgeInfluenceUpdate> batch{MakeUpdate(n, i)};
    ASSERT_NE(pair.primary->ApplyUpdates(batch), 0u);
  }
  ASSERT_TRUE(WaitUntil([&] {
    return pair.follower->applied_lsn() >= kRounds;
  }));
  EXPECT_FALSE(pair.follower->promoted());

  // Partition the primary (every outbound frame dropped). The follower
  // hears silence, waits out the timeout, and promotes.
  FailpointRegistry::Instance().Enable("repl/partition",
                                       {.mode = FailpointMode::kError});
  ASSERT_TRUE(WaitUntil([&] { return pair.follower->promoted(); }))
      << "follower never promoted";
  EXPECT_EQ(pair.follower->term(), 2u);
  EXPECT_EQ(pair.authority.Current(), 2u);
  EXPECT_EQ(pair.follower->service().term(), 2u);

  // The deposed primary still *thinks* it is term 1: its next write
  // must be fenced -- rejected before it touches the WAL -- with its
  // own outcome code and journal event, not folded into kWalFailed.
  std::vector<EdgeInfluenceUpdate> batch{MakeUpdate(n, kRounds)};
  ApplyUpdatesOutcome outcome;
  EXPECT_EQ(pair.primary->ApplyUpdates(batch, &outcome), 0u);
  EXPECT_EQ(outcome, ApplyUpdatesOutcome::kFencedStaleTerm);
  EXPECT_EQ(pair.primary->durable_lsn(), kRounds);  // nothing appended
  bool fenced_event = false;
  for (const obs::Event& event :
       pair.primary->mutable_journal().Snapshot()) {
    if (event.kind == obs::EventKind::kFencedWrite) {
      fenced_event = true;
      EXPECT_EQ(event.a, 2u);  // authority's term
      EXPECT_EQ(event.b, 1u);  // the deposed writer's term
    }
  }
  EXPECT_TRUE(fenced_event);
  EXPECT_GT(pair.primary->metrics().Snapshot().CounterValue(
                "pitex_fenced_writes_total"),
            0u);

  // The promoted follower is the writer now: it accepts updates and
  // serves them, seamlessly continuing the primary's history.
  bool promote_event = false;
  for (const obs::Event& event :
       pair.follower->service().mutable_journal().Snapshot()) {
    if (event.kind == obs::EventKind::kReplPromote) {
      promote_event = true;
      EXPECT_EQ(event.a, 2u);
      EXPECT_EQ(event.b, kRounds);
    }
  }
  EXPECT_TRUE(promote_event);
  ASSERT_NE(pair.follower->service().ApplyUpdates(batch), 0u);
  const obs::MetricsSnapshot fm =
      pair.follower->service().metrics().Snapshot();
  EXPECT_EQ(fm.GaugeValue("pitex_repl_promoted"), 1);
  EXPECT_EQ(fm.GaugeValue("pitex_term"), 2);

  PitexService reference(&n, DurableOptions(""));
  reference.Start();
  for (uint64_t i = 0; i <= kRounds; ++i) {
    std::vector<EdgeInfluenceUpdate> ref_batch{MakeUpdate(n, i)};
    ASSERT_NE(reference.ApplyUpdates(ref_batch), 0u);
  }
  ExpectBitIdentical(pair.follower->service(), reference, n);

  FailpointRegistry::Instance().DisableAll();
  pair.shipper->Stop();
  pair.follower->Stop();
}

TEST_F(ReplicationTest, LosingCandidateAdoptsWinnersTermInsteadOfPromoting) {
  // Two followers racing for the same election: the authority admits
  // exactly one Advance, so the loser must step back into follower
  // role under the winner's term (no dual-primary).
  InProcessTermAuthority authority(1);
  // Simulate the winner: term 2 is taken before the loser's attempt.
  EXPECT_TRUE(authority.Advance(2));
  EXPECT_FALSE(authority.Advance(2));  // the loser's CAS fails
  EXPECT_EQ(authority.Current(), 2u);
  // A later election (term 3) is still open.
  EXPECT_TRUE(authority.Advance(3));
}

}  // namespace
}  // namespace pitex
