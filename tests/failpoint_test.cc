// Tests for the fault-injection registry (src/util/failpoint.h):
// arming/disarming, skip/fires windows, delay mode, env-style spec
// parsing, and the disarmed fast path.

#include "src/util/failpoint.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

namespace pitex {
namespace {

// The registry is a process-wide singleton; every test must leave it
// clean or later tests (and later suites in the same binary) inherit
// armed points.
class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
#if !PITEX_FAILPOINTS_ENABLED
    GTEST_SKIP() << "fail points compiled out (-DPITEX_FAILPOINTS=OFF)";
#endif
    FailpointRegistry::Instance().DisableAll();
  }
  void TearDown() override { FailpointRegistry::Instance().DisableAll(); }
};

TEST_F(FailpointTest, DisarmedPointNeverFires) {
  EXPECT_FALSE(FailpointRegistry::Instance().armed());
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(PITEX_FAILPOINT("test/never_enabled"));
  }
  // The macro short-circuits on armed(): nothing was even evaluated.
  EXPECT_EQ(FailpointRegistry::Instance().HitCount("test/never_enabled"), 0u);
}

TEST_F(FailpointTest, ErrorModeFiresEveryTime) {
  FailpointConfig config;
  config.mode = FailpointMode::kError;
  FailpointRegistry::Instance().Enable("test/always", config);
  EXPECT_TRUE(FailpointRegistry::Instance().armed());
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(PITEX_FAILPOINT("test/always"));
  }
  EXPECT_EQ(FailpointRegistry::Instance().HitCount("test/always"), 10u);
  EXPECT_EQ(FailpointRegistry::Instance().FireCount("test/always"), 10u);
}

TEST_F(FailpointTest, SkipThenFire) {
  FailpointConfig config;
  config.mode = FailpointMode::kError;
  config.skip = 3;
  FailpointRegistry::Instance().Enable("test/skip", config);
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(PITEX_FAILPOINT("test/skip")) << "hit " << i;
  }
  EXPECT_TRUE(PITEX_FAILPOINT("test/skip"));
  EXPECT_TRUE(PITEX_FAILPOINT("test/skip"));
  EXPECT_EQ(FailpointRegistry::Instance().HitCount("test/skip"), 5u);
  EXPECT_EQ(FailpointRegistry::Instance().FireCount("test/skip"), 2u);
}

TEST_F(FailpointTest, FiresBudgetExhausts) {
  FailpointConfig config;
  config.mode = FailpointMode::kError;
  config.fires = 2;
  FailpointRegistry::Instance().Enable("test/budget", config);
  EXPECT_TRUE(PITEX_FAILPOINT("test/budget"));
  EXPECT_TRUE(PITEX_FAILPOINT("test/budget"));
  // Budget spent: the point stays registered but can no longer fire.
  for (int i = 0; i < 5; ++i) {
    EXPECT_FALSE(PITEX_FAILPOINT("test/budget"));
  }
  EXPECT_EQ(FailpointRegistry::Instance().FireCount("test/budget"), 2u);
}

TEST_F(FailpointTest, SkipAndFiresCompose) {
  FailpointConfig config;
  config.mode = FailpointMode::kError;
  config.skip = 2;
  config.fires = 1;
  FailpointRegistry::Instance().Enable("test/window", config);
  EXPECT_FALSE(PITEX_FAILPOINT("test/window"));
  EXPECT_FALSE(PITEX_FAILPOINT("test/window"));
  EXPECT_TRUE(PITEX_FAILPOINT("test/window"));
  EXPECT_FALSE(PITEX_FAILPOINT("test/window"));
}

TEST_F(FailpointTest, DelayModeSleepsButReportsNoError) {
  FailpointConfig config;
  config.mode = FailpointMode::kDelay;
  config.delay_ms = 30;
  FailpointRegistry::Instance().Enable("test/delay", config);
  const auto start = std::chrono::steady_clock::now();
  // Delay-mode evaluations return false: there is no error to take.
  EXPECT_FALSE(PITEX_FAILPOINT("test/delay"));
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            25);
  EXPECT_EQ(FailpointRegistry::Instance().FireCount("test/delay"), 1u);
}

TEST_F(FailpointTest, DisableStopsFiring) {
  FailpointConfig config;
  FailpointRegistry::Instance().Enable("test/off", config);
  EXPECT_TRUE(PITEX_FAILPOINT("test/off"));
  FailpointRegistry::Instance().Disable("test/off");
  EXPECT_FALSE(FailpointRegistry::Instance().armed());
  EXPECT_FALSE(PITEX_FAILPOINT("test/off"));
}

TEST_F(FailpointTest, ReEnableResetsCounters) {
  FailpointConfig config;
  FailpointRegistry::Instance().Enable("test/reset", config);
  (void)PITEX_FAILPOINT("test/reset");
  (void)PITEX_FAILPOINT("test/reset");
  EXPECT_EQ(FailpointRegistry::Instance().HitCount("test/reset"), 2u);
  FailpointRegistry::Instance().Enable("test/reset", config);
  EXPECT_EQ(FailpointRegistry::Instance().HitCount("test/reset"), 0u);
  EXPECT_EQ(FailpointRegistry::Instance().FireCount("test/reset"), 0u);
}

TEST_F(FailpointTest, ParseSpecSingleEntry) {
  std::string error;
  ASSERT_TRUE(FailpointRegistry::Instance().ParseSpec(
      "index_io/load=error:skip=2:fires=3", &error))
      << error;
  EXPECT_FALSE(PITEX_FAILPOINT("index_io/load"));
  EXPECT_FALSE(PITEX_FAILPOINT("index_io/load"));
  EXPECT_TRUE(PITEX_FAILPOINT("index_io/load"));
}

TEST_F(FailpointTest, ParseSpecMultipleEntries) {
  std::string error;
  ASSERT_TRUE(FailpointRegistry::Instance().ParseSpec(
      "a/b=error,c/d=delay:ms=1,e/f=off", &error))
      << error;
  EXPECT_TRUE(PITEX_FAILPOINT("a/b"));
  EXPECT_FALSE(PITEX_FAILPOINT("c/d"));  // delay fires but is not an error
  EXPECT_EQ(FailpointRegistry::Instance().FireCount("c/d"), 1u);
  EXPECT_FALSE(PITEX_FAILPOINT("e/f"));
}

TEST_F(FailpointTest, ParseSpecRejectsGarbage) {
  std::string error;
  EXPECT_FALSE(FailpointRegistry::Instance().ParseSpec("nomode", &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(FailpointRegistry::Instance().ParseSpec("x=banana", &error));
  EXPECT_FALSE(
      FailpointRegistry::Instance().ParseSpec("x=error:skip=abc", &error));
  EXPECT_FALSE(
      FailpointRegistry::Instance().ParseSpec("x=error:bogus=1", &error));
  EXPECT_FALSE(FailpointRegistry::Instance().ParseSpec("=error", &error));
}

TEST_F(FailpointTest, ConcurrentEvaluationIsSafe) {
  FailpointConfig config;
  config.mode = FailpointMode::kError;
  config.fires = 100;
  FailpointRegistry::Instance().Enable("test/mt", config);
  std::atomic<int> fired{0};
  std::vector<std::thread> threads;
  threads.reserve(8);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&fired] {
      for (int i = 0; i < 100; ++i) {
        if (PITEX_FAILPOINT("test/mt")) fired.fetch_add(1);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  // Exactly the budget fires, no matter the interleaving.
  EXPECT_EQ(fired.load(), 100);
  EXPECT_EQ(FailpointRegistry::Instance().HitCount("test/mt"), 800u);
}

}  // namespace
}  // namespace pitex
