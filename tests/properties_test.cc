// Cross-module property suites (parameterized gtest sweeps):
//  * combination enumerator counting identity over (n, k);
//  * all estimators (online + index) agree with the exact oracle on
//    randomized small networks across seeds;
//  * monotonicity: raising every edge probability cannot lower influence.

#include <memory>

#include <gtest/gtest.h>

#include "src/core/tagset_enumerator.h"
#include "src/graph/generators.h"
#include "src/index/rr_index.h"
#include "src/sampling/exact.h"
#include "src/sampling/lazy_sampler.h"
#include "src/sampling/mc_sampler.h"
#include "src/sampling/rr_sampler.h"

namespace pitex {
namespace {

// ---------------------------------------------------------------------
// Enumerator: count identity C(n, k) for a sweep of (n, k).
class EnumeratorCountTest
    : public testing::TestWithParam<std::pair<size_t, size_t>> {};

INSTANTIATE_TEST_SUITE_P(
    Sweep, EnumeratorCountTest,
    testing::Values(std::pair<size_t, size_t>{4, 2},
                    std::pair<size_t, size_t>{6, 3},
                    std::pair<size_t, size_t>{8, 1},
                    std::pair<size_t, size_t>{8, 5},
                    std::pair<size_t, size_t>{10, 4},
                    std::pair<size_t, size_t>{12, 6}),
    [](const auto& param_info) {
      return "n" + std::to_string(param_info.param.first) + "k" +
             std::to_string(param_info.param.second);
    });

TEST_P(EnumeratorCountTest, EnumeratedCountMatchesBinomial) {
  const auto [n, k] = GetParam();
  size_t count = 0;
  for (TagSetEnumerator it(n, k); !it.Done(); it.Next()) ++count;
  EXPECT_NEAR(static_cast<double>(count), TagSetEnumerator(n, k).Count(),
              0.5);
}

// ---------------------------------------------------------------------
// Randomized small-world agreement: every estimator matches the exact
// oracle on a random graph with random probabilities.
class RandomWorldProbs final : public EdgeProbFn {
 public:
  RandomWorldProbs(size_t num_edges, uint64_t seed) {
    Rng rng(seed);
    probs_.resize(num_edges);
    for (double& p : probs_) {
      // Mix of zero, deterministic and fractional probabilities.
      const double u = rng.NextDouble();
      if (u < 0.2) {
        p = 0.0;
      } else if (u < 0.3) {
        p = 1.0;
      } else {
        p = rng.NextDouble() * 0.8;
      }
    }
  }
  double Prob(EdgeId e) const override { return probs_[e]; }

 private:
  std::vector<double> probs_;
};

class RandomAgreementTest : public testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, RandomAgreementTest,
                         testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

TEST_P(RandomAgreementTest, AllEstimatorsMatchExact) {
  const uint64_t seed = GetParam();
  Rng rng(seed * 1000);
  // Small enough for the exact oracle: <= ~14 fractional edges.
  const Graph g = ErdosRenyi(10, 18, &rng);
  const RandomWorldProbs probs(g.num_edges(), seed);
  const VertexId u = 0;
  const double exact = ExactInfluence(g, probs, u);

  SampleSizePolicy policy;
  policy.eps = 0.1;
  policy.num_tags = 4;
  policy.k = 1;
  policy.min_samples = 30000;
  policy.max_samples = 30000;
  McSampler mc(g, policy, seed);
  RrSampler rr(g, policy, seed + 1);
  LazySampler lazy(g, policy, seed + 2);
  const double tol = std::max(0.03, 0.04 * exact);
  EXPECT_NEAR(mc.EstimateInfluence(u, probs).influence, exact, tol);
  EXPECT_NEAR(rr.EstimateInfluence(u, probs).influence, exact, tol);
  EXPECT_NEAR(lazy.EstimateInfluence(u, probs).influence, exact, tol);
}

TEST_P(RandomAgreementTest, IndexMatchesExactWithinEnvelope) {
  const uint64_t seed = GetParam();
  Rng rng(seed * 777);
  SocialNetwork n;
  n.graph = ErdosRenyi(10, 16, &rng);
  n.topics = TopicModel(2, 4);
  for (TagId w = 0; w < 4; ++w) {
    n.topics.SetTagTopic(w, w % 2, 0.5 + 0.5 * rng.NextDouble());
  }
  InfluenceGraphBuilder ib(n.graph.num_edges());
  for (EdgeId e = 0; e < n.graph.num_edges(); ++e) {
    std::vector<EdgeTopicEntry> entries;
    for (TopicId z = 0; z < 2; ++z) {
      if (rng.NextBernoulli(0.6)) entries.push_back({z, 0.6 * rng.NextDouble()});
    }
    ib.SetEdgeTopics(e, entries);
  }
  n.influence = ib.Build();

  RrIndexOptions options;
  options.theta_override = 40000;
  options.seed = seed;
  RrIndex index(n, options);
  index.Build();

  const TagId tags[] = {0, 1};
  const auto post = n.topics.Posterior(tags);
  const PosteriorProbs probs(n.influence, post);
  const double exact = ExactInfluence(n.graph, probs, 0);
  const Estimate est = index.EstimateInfluence(0, probs);
  EXPECT_NEAR(est.influence, exact, std::max(0.05, 0.06 * exact));
}

// ---------------------------------------------------------------------
// Monotonicity: scaling all probabilities up cannot decrease influence.
class ScaledProbs final : public EdgeProbFn {
 public:
  ScaledProbs(const EdgeProbFn& base, double factor)
      : base_(base), factor_(factor) {}
  double Prob(EdgeId e) const override {
    return std::min(1.0, base_.Prob(e) * factor_);
  }

 private:
  const EdgeProbFn& base_;
  double factor_;
};

TEST_P(RandomAgreementTest, InfluenceMonotoneInProbabilities) {
  const uint64_t seed = GetParam();
  Rng rng(seed * 31);
  const Graph g = ErdosRenyi(9, 14, &rng);
  const RandomWorldProbs base(g.num_edges(), seed + 50);
  const ScaledProbs scaled(base, 1.5);
  EXPECT_LE(ExactInfluence(g, base, 0),
            ExactInfluence(g, scaled, 0) + 1e-9);
}

}  // namespace
}  // namespace pitex
