// Unit tests for the observability spine (src/obs/): metrics registry
// and exporters, hot counter table, event journal, and the tracer's
// span storage/collection mechanics. Serving-tier wiring is covered by
// serve_observability_test.cc.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/journal.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace pitex {
namespace obs {
namespace {

TEST(CounterTest, FoldsShardsExactlyAcrossThreads) {
  Counter counter;
  constexpr size_t kThreads = 8;
  constexpr uint64_t kPerThread = 10000;
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (uint64_t i = 0; i < kPerThread; ++i) counter.Inc();
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter.Value(), kThreads * kPerThread);
  counter.Inc(42);
  EXPECT_EQ(counter.Value(), kThreads * kPerThread + 42);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge gauge;
  EXPECT_EQ(gauge.Value(), 0);
  gauge.Set(7);
  EXPECT_EQ(gauge.Value(), 7);
  gauge.Add(-10);
  EXPECT_EQ(gauge.Value(), -3);
}

TEST(HistogramTest, BucketsAndSum) {
  Histogram histogram({1.0, 10.0, 100.0});
  histogram.Observe(0.5);    // bucket 0 (<= 1)
  histogram.Observe(1.0);    // bucket 0 (le is inclusive)
  histogram.Observe(5.0);    // bucket 1
  histogram.Observe(1000.0); // +Inf bucket
  const std::vector<uint64_t> counts = histogram.Counts();
  ASSERT_EQ(counts.size(), 4u);  // 3 bounds + implicit +Inf
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 0u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(histogram.TotalCount(), 4u);
  EXPECT_DOUBLE_EQ(histogram.Sum(), 1006.5);
}

TEST(MetricsRegistryTest, RegistrationIsIdempotentPerName) {
  MetricsRegistry registry;
  Counter* a = registry.RegisterCounter("pitex_test_total", "help");
  Counter* b = registry.RegisterCounter("pitex_test_total", "other help");
  EXPECT_EQ(a, b);  // same handle: a restarted component keeps counts
  a->Inc(3);
  EXPECT_EQ(registry.Snapshot().CounterValue("pitex_test_total"), 3u);
}

TEST(MetricsRegistryTest, SnapshotRunsCollectorsFirst) {
  MetricsRegistry registry;
  Gauge* gauge = registry.RegisterGauge("pitex_test_gauge", "help");
  std::atomic<int64_t> source{0};
  registry.AddCollector([gauge, &source] {
    gauge->Set(source.load(std::memory_order_relaxed));
  });
  source.store(11);
  EXPECT_EQ(registry.Snapshot().GaugeValue("pitex_test_gauge"), 11);
  source.store(-4);
  EXPECT_EQ(registry.Snapshot().GaugeValue("pitex_test_gauge"), -4);
}

TEST(MetricsRegistryTest, FindReturnsNullOnUnknownName) {
  MetricsRegistry registry;
  registry.RegisterCounter("pitex_known_total", "help");
  const MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_NE(snapshot.Find("pitex_known_total"), nullptr);
  EXPECT_EQ(snapshot.Find("pitex_unknown_total"), nullptr);
}

TEST(MetricsRegistryTest, JsonExportShape) {
  MetricsRegistry registry;
  registry.RegisterCounter("pitex_c_total", "counter help")->Inc(5);
  registry.RegisterGauge("pitex_g", "gauge help")->Set(-2);
  registry.RegisterHistogram("pitex_h_seconds", "histogram help",
                             {0.5, 2.0})->Observe(1.0);
  const std::string json = registry.Snapshot().ToJson();
  EXPECT_NE(json.find("{\"metrics\":["), std::string::npos) << json;
  EXPECT_NE(json.find("\"name\":\"pitex_c_total\",\"type\":\"counter\","
                      "\"value\":5"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"name\":\"pitex_g\",\"type\":\"gauge\",\"value\":-2"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"type\":\"histogram\",\"count\":1"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"le\":\"+Inf\""), std::string::npos) << json;
}

TEST(MetricsRegistryTest, PrometheusExportCumulativeBuckets) {
  MetricsRegistry registry;
  Histogram* histogram =
      registry.RegisterHistogram("pitex_h_seconds", "h help", {1.0, 10.0});
  histogram->Observe(0.5);
  histogram->Observe(5.0);
  histogram->Observe(50.0);
  const std::string prom = registry.Snapshot().ToPrometheus();
  EXPECT_NE(prom.find("# HELP pitex_h_seconds h help"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE pitex_h_seconds histogram"), std::string::npos);
  // Cumulative: 1 at le=1, 2 at le=10, 3 at +Inf.
  EXPECT_NE(prom.find("pitex_h_seconds_bucket{le=\"1\"} 1"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("pitex_h_seconds_bucket{le=\"10\"} 2"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("pitex_h_seconds_bucket{le=\"+Inf\"} 3"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("pitex_h_seconds_count 3"), std::string::npos) << prom;
}

TEST(HotCounterTest, CountMacroHitsTheTable) {
  const uint64_t before =
      HotCounterRef(HotCounter::kSolveFrontierPops).Value();
  PITEX_COUNT(kSolveFrontierPops, 3);
  EXPECT_EQ(HotCounterRef(HotCounter::kSolveFrontierPops).Value(),
            before + 3);
  const MetricsSnapshot snapshot = HotCountersSnapshot();
  EXPECT_GE(snapshot.CounterValue("pitex_solve_frontier_pops_total"),
            before + 3);
  // Every table slot exports with a stable name.
  EXPECT_EQ(snapshot.metrics.size(),
            static_cast<size_t>(HotCounter::kHotCounterCount));
}

TEST(EventJournalTest, SnapshotOldestFirst) {
  EventJournal journal(16);
  EXPECT_EQ(journal.capacity(), 16u);
  journal.Record(EventKind::kShed, 1, 2);
  journal.Record(EventKind::kEpochSwap, 3, 4);
  journal.Record(EventKind::kWalFailure, 5);
  const std::vector<Event> events = journal.Snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].kind, EventKind::kShed);
  EXPECT_EQ(events[0].a, 1u);
  EXPECT_EQ(events[0].b, 2u);
  EXPECT_EQ(events[1].kind, EventKind::kEpochSwap);
  EXPECT_EQ(events[2].kind, EventKind::kWalFailure);
  EXPECT_LE(events[0].t_ns, events[2].t_ns);
  EXPECT_EQ(journal.total_recorded(), 3u);
}

TEST(EventJournalTest, OverwritesOldestWhenFull) {
  EventJournal journal(4);  // rounds to 4
  for (uint64_t i = 0; i < 10; ++i) {
    journal.Record(EventKind::kPublishRetry, i);
  }
  const std::vector<Event> events = journal.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  // The ring keeps the newest 4 (payloads 6..9), oldest-first.
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].a, 6u + i);
  }
  EXPECT_EQ(journal.total_recorded(), 10u);
}

TEST(EventJournalTest, CapacityRoundsUpToPowerOfTwo) {
  EventJournal journal(100);
  EXPECT_EQ(journal.capacity(), 128u);
}

TEST(EventJournalTest, ConcurrentRecordersNeverTearSnapshot) {
  EventJournal journal(64);
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (size_t t = 0; t < 4; ++t) {
    writers.emplace_back([&journal, &stop, t] {
      uint64_t i = 0;
      while (!stop.load(std::memory_order_acquire)) {
        journal.Record(EventKind::kDegraded, t, i++);
      }
    });
  }
  for (int round = 0; round < 50; ++round) {
    const std::vector<Event> events = journal.Snapshot();
    EXPECT_LE(events.size(), journal.capacity());
    for (const Event& event : events) {
      // A torn slot would show a writer id the payload scheme never
      // produced together; the stamp re-check must have filtered it.
      EXPECT_EQ(event.kind, EventKind::kDegraded);
      EXPECT_LT(event.a, 4u);
    }
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& writer : writers) writer.join();
}

TEST(EventJournalTest, DumpToRendersEveryEvent) {
  EventJournal journal(8);
  journal.Record(EventKind::kCheckpoint, 17, 3);
  std::FILE* tmp = std::tmpfile();
  ASSERT_NE(tmp, nullptr);
  journal.DumpTo(tmp);
  std::rewind(tmp);
  char buffer[512] = {};
  const size_t read = std::fread(buffer, 1, sizeof(buffer) - 1, tmp);
  std::fclose(tmp);
  const std::string text(buffer, read);
  EXPECT_NE(text.find("event journal (1 events"), std::string::npos) << text;
  EXPECT_NE(text.find("checkpoint a=17 b=3"), std::string::npos) << text;
}

class TracerTest : public ::testing::Test {
 protected:
  void SetUp() override {
#if !PITEX_TRACING_ENABLED
    GTEST_SKIP() << "tracing compiled out (-DPITEX_TRACING=OFF)";
#endif
    Tracer::Instance().SetSampleEvery(1);
    Tracer::Instance().Clear();
  }
  void TearDown() override {
    Tracer::Instance().SetSampleEvery(0);
    Tracer::Instance().Clear();
  }
};

TEST_F(TracerTest, SamplingOffMeansUnsampledContexts) {
  Tracer::Instance().SetSampleEvery(0);
  const TraceContext context = TraceContext::Start();
  EXPECT_FALSE(context.sampled());
  EXPECT_EQ(context.id(), 0u);
  // Recording against id 0 is the no-op that makes unsampled queries
  // free: nothing lands in any buffer.
  context.Record(SpanKind::kSolve, 1, 2);
  EXPECT_TRUE(Tracer::Instance().CollectAll().empty());
}

TEST_F(TracerTest, CollectStitchesOneTraceAcrossThreads) {
  const TraceContext context = TraceContext::Start();
  ASSERT_TRUE(context.sampled());
  context.Record(SpanKind::kAdmission, 100, 200);
  std::thread worker([&context] {
    context.Record(SpanKind::kQueueWait, 150, 400);
    context.Record(SpanKind::kSolve, 400, 900);
  });
  worker.join();
  // Noise from another trace must not leak into the collection.
  const TraceContext other = TraceContext::Start();
  other.Record(SpanKind::kSolve, 0, 1);

  const std::vector<SpanRecord> spans =
      Tracer::Instance().Collect(context.id());
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].kind, SpanKind::kAdmission);  // sorted by start
  EXPECT_EQ(spans[1].kind, SpanKind::kQueueWait);
  EXPECT_EQ(spans[2].kind, SpanKind::kSolve);
  for (const SpanRecord& span : spans) {
    EXPECT_EQ(span.trace_id, context.id());
    EXPECT_GE(span.end_ns, span.start_ns);
  }
}

TEST_F(TracerTest, ScopedSpanAttributesToTheArmedTrace) {
  const TraceContext context = TraceContext::Start();
  {
    PITEX_TRACE_SCOPE(context.id());
    PITEX_SPAN(kSolve);
    {
      PITEX_SPAN(kCacheProbe);  // nests: both record against context
    }
  }
  {
    PITEX_SPAN(kSwap);  // no trace armed here: inert, no record
  }
  const std::vector<SpanRecord> spans =
      Tracer::Instance().Collect(context.id());
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].kind, SpanKind::kSolve);
  EXPECT_EQ(spans[1].kind, SpanKind::kCacheProbe);
  // Nested: the probe lies within the solve span.
  EXPECT_GE(spans[1].start_ns, spans[0].start_ns);
  EXPECT_LE(spans[1].end_ns, spans[0].end_ns);
  EXPECT_TRUE(Tracer::Instance().CollectAll().size() == 2);
}

TEST_F(TracerTest, SampleEveryNKeepsOneInN) {
  Tracer::Instance().SetSampleEvery(4);
  size_t sampled = 0;
  for (int i = 0; i < 40; ++i) {
    if (TraceContext::Start().sampled()) ++sampled;
  }
  EXPECT_EQ(sampled, 10u);
}

TEST_F(TracerTest, RingOverwriteCountsDrops) {
  const TraceContext context = TraceContext::Start();
  ASSERT_TRUE(context.sampled());
  for (size_t i = 0; i < kSpanBufferCapacity + 10; ++i) {
    context.Record(SpanKind::kSolve, static_cast<int64_t>(i),
                   static_cast<int64_t>(i + 1));
  }
  EXPECT_EQ(Tracer::Instance().dropped(), 10u);
  EXPECT_EQ(Tracer::Instance().Collect(context.id()).size(),
            kSpanBufferCapacity);
}

TEST_F(TracerTest, SpanKindNamesAreStable) {
  EXPECT_STREQ(SpanKindName(SpanKind::kAdmission), "admission");
  EXPECT_STREQ(SpanKindName(SpanKind::kQueueWait), "queue_wait");
  EXPECT_STREQ(SpanKindName(SpanKind::kSolve), "solve");
  EXPECT_STREQ(SpanKindName(SpanKind::kWalFsync), "wal_fsync");
  EXPECT_STREQ(SpanKindName(SpanKind::kPack), "pack");
}

}  // namespace
}  // namespace obs
}  // namespace pitex
