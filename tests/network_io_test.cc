#include "src/model/network_io.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "running_example.h"
#include "src/datasets/synthetic.h"
#include "src/sampling/exact.h"

namespace pitex {
namespace {

std::string TempPath(const char* name) {
  return testing::TempDir() + "/" + name;
}

void ExpectNetworksEqual(const SocialNetwork& a, const SocialNetwork& b) {
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (EdgeId e = 0; e < a.num_edges(); ++e) {
    EXPECT_EQ(a.graph.Tail(e), b.graph.Tail(e));
    EXPECT_EQ(a.graph.Head(e), b.graph.Head(e));
  }
  ASSERT_EQ(a.topics.num_topics(), b.topics.num_topics());
  ASSERT_EQ(a.topics.num_tags(), b.topics.num_tags());
  for (TopicId z = 0; z < a.topics.num_topics(); ++z) {
    EXPECT_DOUBLE_EQ(a.topics.prior()[z], b.topics.prior()[z]);
    for (TagId w = 0; w < a.topics.num_tags(); ++w) {
      EXPECT_DOUBLE_EQ(a.topics.TagTopic(w, z), b.topics.TagTopic(w, z));
    }
  }
  for (EdgeId e = 0; e < a.num_edges(); ++e) {
    const auto ta = a.influence.EdgeTopics(e);
    const auto tb = b.influence.EdgeTopics(e);
    ASSERT_EQ(ta.size(), tb.size()) << "edge " << e;
    for (size_t i = 0; i < ta.size(); ++i) {
      EXPECT_EQ(ta[i].topic, tb[i].topic);
      EXPECT_DOUBLE_EQ(ta[i].prob, tb[i].prob);
    }
  }
  ASSERT_EQ(a.tags.size(), b.tags.size());
  for (TagId w = 0; w < a.tags.size(); ++w) {
    EXPECT_EQ(a.tags.Name(w), b.tags.Name(w));
  }
}

TEST(NetworkIoTest, RunningExampleRoundTrip) {
  const SocialNetwork original = MakeRunningExample();
  const std::string path = TempPath("running_example.pitex");
  ASSERT_TRUE(SaveNetwork(original, path));
  auto loaded = LoadNetwork(path);
  ASSERT_TRUE(loaded.has_value());
  ExpectNetworksEqual(original, *loaded);
  std::remove(path.c_str());
}

TEST(NetworkIoTest, RoundTripPreservesSemantics) {
  const SocialNetwork original = MakeRunningExample();
  const std::string path = TempPath("semantics.pitex");
  ASSERT_TRUE(SaveNetwork(original, path));
  auto loaded = LoadNetwork(path);
  ASSERT_TRUE(loaded.has_value());
  const TagId tags[] = {0, 1};
  EXPECT_NEAR(ExactInfluenceForTags(*loaded, tags, 0), 1.5125, 1e-9);
}

TEST(NetworkIoTest, SyntheticDatasetRoundTrip) {
  const SocialNetwork original = GenerateDataset(LastfmSpec(0.1));
  const std::string path = TempPath("lastfm.pitex");
  ASSERT_TRUE(SaveNetwork(original, path));
  auto loaded = LoadNetwork(path);
  ASSERT_TRUE(loaded.has_value());
  ExpectNetworksEqual(original, *loaded);
  std::remove(path.c_str());
}

TEST(NetworkIoTest, MissingFileFails) {
  EXPECT_FALSE(LoadNetwork("/nonexistent/net.pitex").has_value());
}

TEST(NetworkIoTest, WrongMagicFails) {
  const std::string path = TempPath("bad_magic.pitex");
  std::ofstream(path) << "NOT-PITEX 1\n";
  EXPECT_FALSE(LoadNetwork(path).has_value());
  std::remove(path.c_str());
}

TEST(NetworkIoTest, WrongVersionFails) {
  const std::string path = TempPath("bad_version.pitex");
  std::ofstream(path) << "PITEX-NET 99\ngraph 0 0\n";
  EXPECT_FALSE(LoadNetwork(path).has_value());
  std::remove(path.c_str());
}

TEST(NetworkIoTest, TruncatedInfluenceFails) {
  const SocialNetwork original = MakeRunningExample();
  const std::string path = TempPath("truncate.pitex");
  ASSERT_TRUE(SaveNetwork(original, path));
  // Truncate the file to cut off the tags section and part of influence.
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  in.close();
  std::ofstream(path) << content.substr(0, content.size() * 2 / 3);
  EXPECT_FALSE(LoadNetwork(path).has_value());
  std::remove(path.c_str());
}

TEST(NetworkIoTest, OutOfRangeEntriesFail) {
  const std::string path = TempPath("oob.pitex");
  std::ofstream(path) << "PITEX-NET 1\n"
                      << "graph 2 1\n0 1\n"
                      << "topics 2 2\nprior 0.5 0.5\n"
                      << "tagtopic 1\n0 7 0.5\n";  // topic 7 out of range
  EXPECT_FALSE(LoadNetwork(path).has_value());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace pitex
