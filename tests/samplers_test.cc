// Unit + property tests for the three online samplers (MC, RR, Lazy):
// agreement with the exact oracle, agreement with each other, convergence
// behaviour (Fig. 6 shape) and the counterexample graphs of Fig. 3.

#include <algorithm>
#include <memory>

#include <gtest/gtest.h>

#include "running_example.h"
#include "src/graph/generators.h"
#include "src/sampling/exact.h"
#include "src/sampling/lazy_sampler.h"
#include "src/sampling/lt_sampler.h"
#include "src/sampling/mc_sampler.h"
#include "src/sampling/rr_sampler.h"
#include "src/sampling/triggering_sampler.h"

namespace pitex {
namespace {

SampleSizePolicy TightPolicy() {
  SampleSizePolicy policy;
  policy.eps = 0.1;
  policy.delta = 1000;
  policy.num_tags = 4;
  policy.k = 2;
  policy.min_samples = 20000;
  policy.max_samples = 60000;
  return policy;
}

// A fixed-probability EdgeProbFn for tests.
class ConstProbs final : public EdgeProbFn {
 public:
  explicit ConstProbs(double p) : p_(p) {}
  double Prob(EdgeId) const override { return p_; }

 private:
  double p_;
};

enum class Kind { kMc, kRr, kLazy };

std::unique_ptr<InfluenceOracle> MakeSampler(Kind kind, const Graph& graph,
                                             const SampleSizePolicy& policy,
                                             uint64_t seed) {
  switch (kind) {
    case Kind::kMc: return std::make_unique<McSampler>(graph, policy, seed);
    case Kind::kRr: return std::make_unique<RrSampler>(graph, policy, seed);
    case Kind::kLazy:
      return std::make_unique<LazySampler>(graph, policy, seed);
  }
  return nullptr;
}

class SamplerParamTest : public testing::TestWithParam<Kind> {};

INSTANTIATE_TEST_SUITE_P(AllSamplers, SamplerParamTest,
                         testing::Values(Kind::kMc, Kind::kRr, Kind::kLazy),
                         [](const testing::TestParamInfo<Kind>& param_info) {
                           switch (param_info.param) {
                             case Kind::kMc: return "MC";
                             case Kind::kRr: return "RR";
                             case Kind::kLazy: return "Lazy";
                           }
                           return "?";
                         });

// Every sampler matches the exact oracle on the running example for every
// tag pair (5% relative tolerance with tight sampling).
TEST_P(SamplerParamTest, MatchesExactOnRunningExample) {
  SocialNetwork n = MakeRunningExample();
  auto sampler = MakeSampler(GetParam(), n.graph, TightPolicy(), 7);
  for (TagId a = 0; a < 4; ++a) {
    for (TagId b = a + 1; b < 4; ++b) {
      const TagId tags[] = {a, b};
      const auto post = n.topics.Posterior(tags);
      const PosteriorProbs probs(n.influence, post);
      const double exact = ExactInfluence(n.graph, probs, 0);
      const Estimate est = sampler->EstimateInfluence(0, probs);
      EXPECT_NEAR(est.influence, exact, 0.05 * exact)
          << sampler->Name() << " pair " << a << "," << b;
    }
  }
}

TEST_P(SamplerParamTest, DeterministicEdgesGiveExactSpread) {
  // Chain with probability 1: spread is the whole chain, variance 0.
  Graph g = Chain(6);
  const ConstProbs probs(1.0);
  auto sampler = MakeSampler(GetParam(), g, TightPolicy(), 9);
  const Estimate est = sampler->EstimateInfluence(0, probs);
  EXPECT_NEAR(est.influence, 6.0, 1e-9);
}

TEST_P(SamplerParamTest, ZeroProbabilityGivesUnitSpread) {
  Graph g = Chain(6);
  const ConstProbs probs(0.0);
  auto sampler = MakeSampler(GetParam(), g, TightPolicy(), 9);
  const Estimate est = sampler->EstimateInfluence(0, probs);
  EXPECT_NEAR(est.influence, 1.0, 1e-9);
}

TEST_P(SamplerParamTest, ChainWithHalfProbability) {
  // E[I] = sum_{i=0..4} 0.5^i = 1.9375 for a 5-vertex chain from vertex 0.
  Graph g = Chain(5);
  const ConstProbs probs(0.5);
  auto sampler = MakeSampler(GetParam(), g, TightPolicy(), 11);
  const Estimate est = sampler->EstimateInfluence(0, probs);
  EXPECT_NEAR(est.influence, 1.9375, 0.05);
}

TEST_P(SamplerParamTest, StarGraphSpread) {
  // Fig. 3(a): star with per-edge probability 1/n; E[I] = 1 + n*(1/n) = 2.
  const size_t n = 50;
  Graph g = Star(n + 1);
  const ConstProbs probs(1.0 / static_cast<double>(n));
  auto sampler = MakeSampler(GetParam(), g, TightPolicy(), 13);
  const Estimate est = sampler->EstimateInfluence(0, probs);
  EXPECT_NEAR(est.influence, 2.0, 0.1);
}

TEST_P(SamplerParamTest, EstimateOnRandomGraphAgreesWithMcReference) {
  // Cross-check on a nontrivial random topology against a brute-force MC
  // reference with a large fixed sample count.
  Rng rng(21);
  Graph g = ErdosRenyi(60, 240, &rng);
  const ConstProbs probs(0.15);

  // Reference: plain forward simulation.
  Rng ref_rng(99);
  double total = 0.0;
  const int ref_samples = 60000;
  std::vector<uint8_t> active(g.num_vertices());
  for (int s = 0; s < ref_samples; ++s) {
    std::fill(active.begin(), active.end(), 0);
    std::vector<VertexId> stack{0};
    active[0] = 1;
    int count = 1;
    while (!stack.empty()) {
      VertexId v = stack.back();
      stack.pop_back();
      for (const auto& [w, e] : g.OutEdges(v)) {
        if (!active[w] && ref_rng.NextBernoulli(0.15)) {
          active[w] = 1;
          stack.push_back(w);
          ++count;
        }
      }
    }
    total += count;
  }
  const double reference = total / ref_samples;

  auto sampler = MakeSampler(GetParam(), g, TightPolicy(), 31);
  const Estimate est = sampler->EstimateInfluence(0, probs);
  EXPECT_NEAR(est.influence, reference, 0.07 * reference) << sampler->Name();
}

TEST_P(SamplerParamTest, ReportsSampleAndEdgeCounts) {
  SocialNetwork n = MakeRunningExample();
  const TagId tags[] = {2, 3};
  const auto post = n.topics.Posterior(tags);
  const PosteriorProbs probs(n.influence, post);
  auto sampler = MakeSampler(GetParam(), n.graph, TightPolicy(), 5);
  const Estimate est = sampler->EstimateInfluence(0, probs);
  EXPECT_GT(est.samples, 0u);
  EXPECT_GT(est.edges_visited, 0u);
}

// Lazy visits far fewer edges than MC on the Fig. 3(a) star — the paper's
// headline complexity claim (Lemma 7 vs Lemma 5).
TEST(LazyVsMcTest, LazyVisitsFarFewerEdgesOnStar) {
  const size_t n = 500;
  Graph g = Star(n + 1);
  const ConstProbs probs(1.0 / static_cast<double>(n));
  SampleSizePolicy policy = TightPolicy();
  policy.min_samples = 5000;
  policy.max_samples = 5000;  // fixed sample count for a fair comparison

  McSampler mc(g, policy, 3);
  LazySampler lazy(g, policy, 3);
  const Estimate mc_est = mc.EstimateInfluence(0, probs);
  const Estimate lazy_est = lazy.EstimateInfluence(0, probs);
  EXPECT_NEAR(mc_est.influence, 2.0, 0.15);
  EXPECT_NEAR(lazy_est.influence, 2.0, 0.15);
  // MC probes all n edges every instance; Lazy only the ~1 activation.
  EXPECT_GT(mc_est.edges_visited, 20 * lazy_est.edges_visited);
}

// RR probes the celebrity's in-edges every sample (Fig. 3(b)); MC from a
// fan is cheap per instance.
TEST(RrVsMcTest, RrVisitsManyEdgesOnCelebrity) {
  const size_t n = 200;
  Graph g = Celebrity(n);
  // center->follower edges have p=1; fan->center edges have p=1/n.
  class CelebrityProbs final : public EdgeProbFn {
   public:
    CelebrityProbs(const Graph& g, size_t n) : g_(g), n_(n) {}
    double Prob(EdgeId e) const override {
      return g_.Tail(e) == 0 ? 1.0 : 1.0 / static_cast<double>(n_);
    }

   private:
    const Graph& g_;
    size_t n_;
  };
  const CelebrityProbs probs(g, n);
  SampleSizePolicy policy = TightPolicy();
  policy.min_samples = 30000;
  policy.max_samples = 30000;
  const VertexId fan = static_cast<VertexId>(n + 1);

  RrSampler rr(g, policy, 17);
  LazySampler lazy(g, policy, 17);
  const Estimate rr_est = rr.EstimateInfluence(fan, probs);
  const Estimate lazy_est = lazy.EstimateInfluence(fan, probs);
  // Exact spread: 1 + (1/n) * (1 + n) ~= 2.
  EXPECT_NEAR(rr_est.influence, 2.0, 0.25);
  EXPECT_NEAR(lazy_est.influence, 2.0, 0.25);
  EXPECT_GT(rr_est.edges_visited, 5 * lazy_est.edges_visited);
}

// Statistical equivalence of geometric skips and Bernoulli trials
// (Lemma 6): the lazy estimate distribution matches MC's across seeds.
// Retained pre-materialization RrSampler (verbatim except renames). The
// dense-table treatment (estimator_common.h) must not perturb a single
// coin flip or probability value: rankings and counters are pinned
// bit-identical, the same contract best_effort_equivalence_test.cc
// enforces for the lazy/MC samplers.
class ReferenceRrSampler final : public InfluenceOracle {
 public:
  ReferenceRrSampler(const Graph& graph, SampleSizePolicy policy,
                     uint64_t seed)
      : graph_(graph),
        policy_(policy),
        rng_(seed),
        visit_epoch_(graph.num_vertices(), 0) {}

  const char* Name() const override { return "REF-RR"; }

  Estimate EstimateInfluence(VertexId u, const EdgeProbFn& probs) override {
    const ReachableSet reach = ComputeReachable(graph_, probs, u);
    const auto rw = static_cast<double>(reach.vertices.size());
    const double threshold = policy_.StoppingThreshold();
    const uint64_t cap = policy_.SampleCap(reach.vertices.size());

    Estimate result;
    uint64_t hits = 0;
    std::vector<VertexId> stack;
    for (uint64_t i = 0; i < cap; ++i) {
      const VertexId target =
          reach.vertices[rng_.NextBounded(reach.vertices.size())];
      ++result.samples;
      ++epoch_;
      bool hit = (target == u);
      if (!hit) {
        stack.assign(1, target);
        visit_epoch_[target] = epoch_;
        while (!stack.empty() && !hit) {
          const VertexId v = stack.back();
          stack.pop_back();
          for (const auto& [w, e] : graph_.InEdges(v)) {
            const double p = probs.Prob(e);
            if (p <= 0.0) continue;
            ++result.edges_visited;
            if (visit_epoch_[w] == epoch_) continue;
            if (rng_.NextBernoulli(p)) {
              if (w == u) {
                hit = true;
                break;
              }
              visit_epoch_[w] = epoch_;
              stack.push_back(w);
            }
          }
        }
      }
      if (hit) ++hits;
      if (result.samples >= policy_.min_samples &&
          static_cast<double>(hits) >= threshold) {
        break;
      }
    }
    result.influence =
        static_cast<double>(hits) /
        static_cast<double>(std::max<uint64_t>(result.samples, 1)) * rw;
    result.influence = std::max(result.influence, 1.0);
    result.std_error = SampleMeanStdError(static_cast<double>(hits) * rw,
                                          static_cast<double>(hits) * rw * rw,
                                          result.samples);
    return result;
  }

 private:
  const Graph& graph_;
  SampleSizePolicy policy_;
  Rng rng_;
  std::vector<uint32_t> visit_epoch_;
  uint32_t epoch_ = 0;
};

TEST(RrEquivalenceTest, DenseTableRrIsBitIdenticalToReference) {
  const SocialNetwork n = MakeRunningExample();
  SampleSizePolicy policy = TightPolicy();
  policy.min_samples = 64;
  policy.max_samples = 4096;

  const TagId tag_sets[][2] = {{0, 1}, {1, 2}, {2, 3}, {0, 3}};
  for (const uint64_t seed : {1u, 7u, 42u}) {
    RrSampler current(n.graph, policy, seed);
    ReferenceRrSampler reference(n.graph, policy, seed);
    // Interleave users and tag sets across repeated calls so the member
    // scratch and the lazily validated probability table are exercised
    // across epochs, not just on a cold first call.
    for (int call = 0; call < 12; ++call) {
      const VertexId u = static_cast<VertexId>(call % n.num_vertices());
      const auto posterior = n.topics.Posterior(tag_sets[call % 4]);
      const PosteriorProbs probs(n.influence, posterior);
      const Estimate got = current.EstimateInfluence(u, probs);
      const Estimate want = reference.EstimateInfluence(u, probs);
      ASSERT_EQ(got.samples, want.samples) << "seed " << seed;
      ASSERT_EQ(got.edges_visited, want.edges_visited);
      ASSERT_EQ(got.influence, want.influence);  // bitwise, not NEAR
      ASSERT_EQ(got.std_error, want.std_error);
    }
  }
}

// Retained pre-dense-table LtSampler (verbatim except renames): the
// scratch-based sweep + cached probability table must not perturb a
// single threshold draw or weight value.
class ReferenceLtSampler final : public InfluenceOracle {
 public:
  ReferenceLtSampler(const Graph& graph, SampleSizePolicy policy,
                     uint64_t seed)
      : graph_(graph),
        policy_(policy),
        rng_(seed),
        epoch_(graph.num_vertices(), 0),
        threshold_(graph.num_vertices(), 0.0),
        accumulated_(graph.num_vertices(), 0.0) {}

  const char* Name() const override { return "REF-LT"; }

  Estimate EstimateInfluence(VertexId u, const EdgeProbFn& probs) override {
    const ReachableSet reach = ComputeReachable(graph_, probs, u);
    const auto rw = static_cast<double>(reach.vertices.size());
    const double stop = policy_.StoppingThreshold();
    const uint64_t cap = policy_.SampleCap(reach.vertices.size());

    Estimate result;
    uint64_t total_activated = 0;
    double sum_squares = 0.0;
    std::vector<VertexId> frontier;
    std::vector<uint8_t> active(graph_.num_vertices(), 0);
    std::vector<VertexId> touched;
    for (uint64_t i = 0; i < cap; ++i) {
      ++current_epoch_;
      frontier.assign(1, u);
      active[u] = 1;
      touched.assign(1, u);
      uint64_t activated = 1;
      while (!frontier.empty()) {
        const VertexId v = frontier.back();
        frontier.pop_back();
        for (const auto& [w, e] : graph_.OutEdges(v)) {
          const double weight = probs.Prob(e);
          if (weight <= 0.0) continue;
          ++result.edges_visited;
          if (active[w]) continue;
          if (epoch_[w] != current_epoch_) {
            epoch_[w] = current_epoch_;
            threshold_[w] = rng_.NextDouble();
            accumulated_[w] = 0.0;
            touched.push_back(w);
          }
          accumulated_[w] = std::min(1.0, accumulated_[w] + weight);
          if (accumulated_[w] >= threshold_[w]) {
            active[w] = 1;
            frontier.push_back(w);
            ++activated;
          }
        }
      }
      for (VertexId v : touched) active[v] = 0;
      total_activated += activated;
      sum_squares += static_cast<double>(activated) *
                     static_cast<double>(activated);
      ++result.samples;
      if (result.samples >= policy_.min_samples &&
          static_cast<double>(total_activated) / rw >= stop) {
        break;
      }
    }
    result.influence =
        static_cast<double>(total_activated) /
        static_cast<double>(std::max<uint64_t>(result.samples, 1));
    result.std_error = SampleMeanStdError(
        static_cast<double>(total_activated), sum_squares, result.samples);
    return result;
  }

 private:
  const Graph& graph_;
  SampleSizePolicy policy_;
  Rng rng_;
  std::vector<uint32_t> epoch_;
  std::vector<double> threshold_;
  std::vector<double> accumulated_;
  uint32_t current_epoch_ = 0;
};

TEST(LtEquivalenceTest, DenseTableLtIsBitIdenticalToReference) {
  const SocialNetwork n = MakeRunningExample();
  SampleSizePolicy policy = TightPolicy();
  policy.min_samples = 64;
  policy.max_samples = 4096;

  const TagId tag_sets[][2] = {{0, 1}, {1, 2}, {2, 3}, {0, 3}};
  for (const uint64_t seed : {1u, 7u, 42u}) {
    LtSampler current(n.graph, policy, seed);
    ReferenceLtSampler reference(n.graph, policy, seed);
    // Interleave users and tag sets so the member scratch and the lazily
    // validated table are exercised across epochs, not just cold.
    for (int call = 0; call < 12; ++call) {
      const VertexId u = static_cast<VertexId>(call % n.num_vertices());
      const auto posterior = n.topics.Posterior(tag_sets[call % 4]);
      const PosteriorProbs probs(n.influence, posterior);
      const Estimate got = current.EstimateInfluence(u, probs);
      const Estimate want = reference.EstimateInfluence(u, probs);
      ASSERT_EQ(got.samples, want.samples) << "seed " << seed;
      ASSERT_EQ(got.edges_visited, want.edges_visited);
      ASSERT_EQ(got.influence, want.influence);  // bitwise, not NEAR
      ASSERT_EQ(got.std_error, want.std_error);
    }
  }
}

// Retained pre-dense-table triggering machinery (verbatim except
// renames): distributions probed the virtual Prob(e) per in-edge.
class ReferenceIcTriggering {
 public:
  void SampleTriggeringSet(const Graph& graph, VertexId v,
                           const EdgeProbFn& probs, Rng* rng,
                           std::vector<EdgeId>* live) const {
    for (const auto& [tail, e] : graph.InEdges(v)) {
      const double p = probs.Prob(e);
      if (p > 0.0 && rng->NextBernoulli(p)) live->push_back(e);
    }
  }
};

class ReferenceLtTriggering {
 public:
  void SampleTriggeringSet(const Graph& graph, VertexId v,
                           const EdgeProbFn& probs, Rng* rng,
                           std::vector<EdgeId>* live) const {
    double total = 0.0;
    for (const auto& [tail, e] : graph.InEdges(v)) total += probs.Prob(e);
    if (total <= 0.0) return;
    const double scale = std::max(total, 1.0);
    double pick = rng->NextDouble() * scale;
    for (const auto& [tail, e] : graph.InEdges(v)) {
      pick -= probs.Prob(e);
      if (pick < 0.0) {
        live->push_back(e);
        return;
      }
    }
  }
};

template <typename Distribution>
class ReferenceTriggeringSampler final : public InfluenceOracle {
 public:
  ReferenceTriggeringSampler(const Graph& graph,
                             const Distribution* distribution,
                             SampleSizePolicy policy, uint64_t seed)
      : graph_(graph),
        distribution_(distribution),
        policy_(policy),
        rng_(seed),
        decided_epoch_(graph.num_vertices(), 0),
        live_epoch_(graph.num_edges(), 0),
        active_epoch_(graph.num_vertices(), 0) {}

  const char* Name() const override { return "REF-TRIG"; }

  Estimate EstimateInfluence(VertexId u, const EdgeProbFn& probs) override {
    const ReachableSet reach = ComputeReachable(graph_, probs, u);
    const auto rw = static_cast<double>(reach.vertices.size());
    const double threshold = policy_.StoppingThreshold();
    const uint64_t cap = policy_.SampleCap(reach.vertices.size());

    Estimate result;
    uint64_t total_activated = 0;
    double sum_squares = 0.0;
    std::vector<VertexId> frontier;
    for (uint64_t i = 0; i < cap; ++i) {
      ++epoch_;
      const uint64_t before = total_activated;
      frontier.assign(1, u);
      active_epoch_[u] = epoch_;
      while (!frontier.empty()) {
        const VertexId x = frontier.back();
        frontier.pop_back();
        ++total_activated;
        for (const auto& [v, e] : graph_.OutEdges(x)) {
          if (active_epoch_[v] == epoch_) continue;
          if (decided_epoch_[v] != epoch_) {
            decided_epoch_[v] = epoch_;
            scratch_live_.clear();
            distribution_->SampleTriggeringSet(graph_, v, probs, &rng_,
                                               &scratch_live_);
            result.edges_visited += graph_.InDegree(v);
            for (const EdgeId live : scratch_live_) {
              live_epoch_[live] = epoch_;
            }
          }
          if (live_epoch_[e] == epoch_) {
            active_epoch_[v] = epoch_;
            frontier.push_back(v);
          }
        }
      }
      ++result.samples;
      const auto instance_spread =
          static_cast<double>(total_activated - before);
      sum_squares += instance_spread * instance_spread;
      if (result.samples >= policy_.min_samples && rw > 0.0 &&
          static_cast<double>(total_activated) / rw >= threshold) {
        break;
      }
    }
    result.influence =
        static_cast<double>(total_activated) /
        static_cast<double>(std::max<uint64_t>(result.samples, 1));
    result.std_error = SampleMeanStdError(
        static_cast<double>(total_activated), sum_squares, result.samples);
    return result;
  }

 private:
  const Graph& graph_;
  const Distribution* distribution_;
  SampleSizePolicy policy_;
  Rng rng_;
  std::vector<uint32_t> decided_epoch_;
  std::vector<uint32_t> live_epoch_;
  std::vector<uint32_t> active_epoch_;
  uint32_t epoch_ = 0;
  std::vector<EdgeId> scratch_live_;
};

TEST(TriggeringEquivalenceTest, DenseTableTriggeringIsBitIdentical) {
  const SocialNetwork n = MakeRunningExample();
  SampleSizePolicy policy = TightPolicy();
  policy.min_samples = 64;
  policy.max_samples = 4096;

  const IcTriggering ic;
  const LtTriggering lt;
  const ReferenceIcTriggering ref_ic;
  const ReferenceLtTriggering ref_lt;
  const TagId tag_sets[][2] = {{0, 1}, {1, 2}, {2, 3}, {0, 3}};
  for (const uint64_t seed : {1u, 7u, 42u}) {
    TriggeringSampler ic_current(n.graph, &ic, policy, seed);
    ReferenceTriggeringSampler<ReferenceIcTriggering> ic_reference(
        n.graph, &ref_ic, policy, seed);
    TriggeringSampler lt_current(n.graph, &lt, policy, seed + 100);
    ReferenceTriggeringSampler<ReferenceLtTriggering> lt_reference(
        n.graph, &ref_lt, policy, seed + 100);
    for (int call = 0; call < 12; ++call) {
      const VertexId u = static_cast<VertexId>(call % n.num_vertices());
      const auto posterior = n.topics.Posterior(tag_sets[call % 4]);
      const PosteriorProbs probs(n.influence, posterior);
      const Estimate ic_got = ic_current.EstimateInfluence(u, probs);
      const Estimate ic_want = ic_reference.EstimateInfluence(u, probs);
      ASSERT_EQ(ic_got.samples, ic_want.samples) << "seed " << seed;
      ASSERT_EQ(ic_got.edges_visited, ic_want.edges_visited);
      ASSERT_EQ(ic_got.influence, ic_want.influence);  // bitwise
      ASSERT_EQ(ic_got.std_error, ic_want.std_error);
      const Estimate lt_got = lt_current.EstimateInfluence(u, probs);
      const Estimate lt_want = lt_reference.EstimateInfluence(u, probs);
      ASSERT_EQ(lt_got.samples, lt_want.samples) << "seed " << seed;
      ASSERT_EQ(lt_got.edges_visited, lt_want.edges_visited);
      ASSERT_EQ(lt_got.influence, lt_want.influence);  // bitwise
      ASSERT_EQ(lt_got.std_error, lt_want.std_error);
    }
  }
}

TEST(LazyEquivalenceTest, MeanAcrossSeedsMatchesMc) {
  SocialNetwork n = MakeRunningExample();
  const TagId tags[] = {0, 1};
  const auto post = n.topics.Posterior(tags);
  const PosteriorProbs probs(n.influence, post);
  SampleSizePolicy policy;
  policy.num_tags = 4;
  policy.k = 2;
  policy.min_samples = 500;
  policy.max_samples = 500;

  double mc_mean = 0.0, lazy_mean = 0.0;
  const int trials = 60;
  for (int t = 0; t < trials; ++t) {
    McSampler mc(n.graph, policy, 1000 + t);
    LazySampler lazy(n.graph, policy, 2000 + t);
    mc_mean += mc.EstimateInfluence(0, probs).influence;
    lazy_mean += lazy.EstimateInfluence(0, probs).influence;
  }
  mc_mean /= trials;
  lazy_mean /= trials;
  EXPECT_NEAR(mc_mean, 1.5125, 0.02);
  EXPECT_NEAR(lazy_mean, 1.5125, 0.02);
  EXPECT_NEAR(mc_mean, lazy_mean, 0.03);
}

}  // namespace
}  // namespace pitex
