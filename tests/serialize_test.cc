// Tests for the binary serialization primitives (src/util/serialize.h):
// round trips, endianness-independent layout, checksum verification, and
// failure poisoning.

#include "src/util/serialize.h"

#include <cmath>
#include <cstdint>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace pitex {
namespace {

TEST(Fnv1aTest, MatchesKnownVectors) {
  // Standard FNV-1a 64-bit test vectors.
  Fnv1a empty;
  EXPECT_EQ(empty.digest(), 0xcbf29ce484222325ULL);

  Fnv1a a;
  a.Update("a", 1);
  EXPECT_EQ(a.digest(), 0xaf63dc4c8601ec8cULL);

  Fnv1a foobar;
  foobar.Update("foobar", 6);
  EXPECT_EQ(foobar.digest(), 0x85944171f73967e8ULL);
}

TEST(Fnv1aTest, IncrementalEqualsOneShot) {
  Fnv1a one_shot;
  one_shot.Update("hello world", 11);
  Fnv1a incremental;
  incremental.Update("hello", 5);
  incremental.Update(" ", 1);
  incremental.Update("world", 5);
  EXPECT_EQ(one_shot.digest(), incremental.digest());
}

TEST(BinaryWriterTest, ScalarsRoundTrip) {
  std::stringstream stream;
  BinaryWriter writer(&stream);
  writer.WriteU8(0xab);
  writer.WriteU32(0xdeadbeef);
  writer.WriteU64(0x0123456789abcdefULL);
  writer.WriteF32(3.5f);
  writer.WriteF64(-2.718281828459045);
  writer.WriteString("pitex");
  ASSERT_TRUE(writer.ok());

  BinaryReader reader(&stream);
  uint8_t u8 = 0;
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  float f32 = 0;
  double f64 = 0;
  std::string str;
  ASSERT_TRUE(reader.ReadU8(&u8));
  ASSERT_TRUE(reader.ReadU32(&u32));
  ASSERT_TRUE(reader.ReadU64(&u64));
  ASSERT_TRUE(reader.ReadF32(&f32));
  ASSERT_TRUE(reader.ReadF64(&f64));
  ASSERT_TRUE(reader.ReadString(&str));
  EXPECT_EQ(u8, 0xab);
  EXPECT_EQ(u32, 0xdeadbeefu);
  EXPECT_EQ(u64, 0x0123456789abcdefULL);
  EXPECT_EQ(f32, 3.5f);
  EXPECT_EQ(f64, -2.718281828459045);
  EXPECT_EQ(str, "pitex");
}

TEST(BinaryWriterTest, LittleEndianLayout) {
  std::stringstream stream;
  BinaryWriter writer(&stream);
  writer.WriteU32(0x01020304);
  const std::string bytes = stream.str();
  ASSERT_EQ(bytes.size(), 4u);
  EXPECT_EQ(static_cast<unsigned char>(bytes[0]), 0x04);
  EXPECT_EQ(static_cast<unsigned char>(bytes[1]), 0x03);
  EXPECT_EQ(static_cast<unsigned char>(bytes[2]), 0x02);
  EXPECT_EQ(static_cast<unsigned char>(bytes[3]), 0x01);
}

TEST(BinaryWriterTest, SpecialFloatsRoundTrip) {
  std::stringstream stream;
  BinaryWriter writer(&stream);
  writer.WriteF64(std::numeric_limits<double>::infinity());
  writer.WriteF64(-0.0);
  writer.WriteF64(std::numeric_limits<double>::quiet_NaN());
  writer.WriteF64(std::numeric_limits<double>::denorm_min());

  BinaryReader reader(&stream);
  double value = 0;
  ASSERT_TRUE(reader.ReadF64(&value));
  EXPECT_TRUE(std::isinf(value));
  ASSERT_TRUE(reader.ReadF64(&value));
  EXPECT_EQ(value, 0.0);
  EXPECT_TRUE(std::signbit(value));
  ASSERT_TRUE(reader.ReadF64(&value));
  EXPECT_TRUE(std::isnan(value));
  ASSERT_TRUE(reader.ReadF64(&value));
  EXPECT_EQ(value, std::numeric_limits<double>::denorm_min());
}

TEST(BinaryWriterTest, VectorsRoundTrip) {
  std::stringstream stream;
  BinaryWriter writer(&stream);
  const std::vector<uint32_t> ids = {7, 0, 42, 0xffffffffu};
  const std::vector<uint64_t> wide = {1ULL << 60, 3};
  const std::vector<float> probs = {0.25f, 1.0f, 0.0f};
  const std::vector<double> exact = {0.1, 0.2};
  const std::vector<uint8_t> flags = {0, 1, 1};
  writer.WriteVector<uint32_t>(ids);
  writer.WriteVector<uint64_t>(wide);
  writer.WriteVector<float>(probs);
  writer.WriteVector<double>(exact);
  writer.WriteVector<uint8_t>(flags);

  BinaryReader reader(&stream);
  std::vector<uint32_t> ids2;
  std::vector<uint64_t> wide2;
  std::vector<float> probs2;
  std::vector<double> exact2;
  std::vector<uint8_t> flags2;
  ASSERT_TRUE(reader.ReadVector(&ids2, 100));
  ASSERT_TRUE(reader.ReadVector(&wide2, 100));
  ASSERT_TRUE(reader.ReadVector(&probs2, 100));
  ASSERT_TRUE(reader.ReadVector(&exact2, 100));
  ASSERT_TRUE(reader.ReadVector(&flags2, 100));
  EXPECT_EQ(ids2, ids);
  EXPECT_EQ(wide2, wide);
  EXPECT_EQ(probs2, probs);
  EXPECT_EQ(exact2, exact);
  EXPECT_EQ(flags2, flags);
}

TEST(BinaryReaderTest, VectorOverMaxElementsRejected) {
  std::stringstream stream;
  BinaryWriter writer(&stream);
  const std::vector<uint32_t> ids = {1, 2, 3, 4};
  writer.WriteVector<uint32_t>(ids);

  BinaryReader reader(&stream);
  std::vector<uint32_t> out;
  EXPECT_FALSE(reader.ReadVector(&out, 3));
  EXPECT_FALSE(reader.ok());
}

TEST(BinaryReaderTest, EmptyVectorRoundTrips) {
  std::stringstream stream;
  BinaryWriter writer(&stream);
  writer.WriteVector<uint32_t>(std::vector<uint32_t>{});
  BinaryReader reader(&stream);
  std::vector<uint32_t> out = {99};
  ASSERT_TRUE(reader.ReadVector(&out, 10));
  EXPECT_TRUE(out.empty());
}

TEST(BinaryReaderTest, EmptyStringRoundTrips) {
  std::stringstream stream;
  BinaryWriter writer(&stream);
  writer.WriteString("");
  BinaryReader reader(&stream);
  std::string out = "stale";
  ASSERT_TRUE(reader.ReadString(&out));
  EXPECT_TRUE(out.empty());
}

TEST(BinaryReaderTest, TruncatedStreamFails) {
  std::stringstream stream;
  BinaryWriter writer(&stream);
  writer.WriteU32(5);

  BinaryReader reader(&stream);
  uint64_t value = 0;
  EXPECT_FALSE(reader.ReadU64(&value));  // only 4 bytes available
  EXPECT_FALSE(reader.ok());
}

TEST(BinaryReaderTest, FailurePoisonsSubsequentReads) {
  std::stringstream stream;
  BinaryWriter writer(&stream);
  writer.WriteU8(1);

  BinaryReader reader(&stream);
  uint64_t wide = 0;
  EXPECT_FALSE(reader.ReadU64(&wide));
  uint8_t narrow = 0;
  // A fresh reader could read the byte; a poisoned one must not.
  EXPECT_FALSE(reader.ReadU8(&narrow));
}

TEST(ChecksumTest, ValidFileVerifies) {
  std::stringstream stream;
  BinaryWriter writer(&stream);
  writer.WriteU64(123);
  writer.WriteString("payload");
  writer.WriteChecksum();

  BinaryReader reader(&stream);
  uint64_t value = 0;
  std::string str;
  ASSERT_TRUE(reader.ReadU64(&value));
  ASSERT_TRUE(reader.ReadString(&str));
  EXPECT_TRUE(reader.VerifyChecksum());
}

TEST(ChecksumTest, FlippedBitDetected) {
  std::stringstream stream;
  BinaryWriter writer(&stream);
  writer.WriteU64(123);
  writer.WriteU64(456);
  writer.WriteChecksum();

  std::string bytes = stream.str();
  bytes[3] ^= 0x10;  // corrupt the payload, not the checksum
  std::stringstream corrupted(bytes);
  BinaryReader reader(&corrupted);
  uint64_t a = 0, b = 0;
  ASSERT_TRUE(reader.ReadU64(&a));
  ASSERT_TRUE(reader.ReadU64(&b));
  EXPECT_FALSE(reader.VerifyChecksum());
}

TEST(ChecksumTest, TruncatedChecksumDetected) {
  std::stringstream stream;
  BinaryWriter writer(&stream);
  writer.WriteU64(123);
  writer.WriteChecksum();

  std::string bytes = stream.str();
  bytes.resize(bytes.size() - 2);  // cut into the trailing checksum
  std::stringstream truncated(bytes);
  BinaryReader reader(&truncated);
  uint64_t value = 0;
  ASSERT_TRUE(reader.ReadU64(&value));
  EXPECT_FALSE(reader.VerifyChecksum());
}

TEST(ChecksumTest, WriterAndReaderDigestsAgree) {
  std::stringstream stream;
  BinaryWriter writer(&stream);
  writer.WriteU32(77);
  writer.WriteString("abc");
  const uint64_t writer_digest = writer.digest();

  BinaryReader reader(&stream);
  uint32_t value = 0;
  std::string str;
  ASSERT_TRUE(reader.ReadU32(&value));
  ASSERT_TRUE(reader.ReadString(&str));
  EXPECT_EQ(reader.digest(), writer_digest);
}

}  // namespace
}  // namespace pitex
