#include "src/sampling/exact.h"

#include <gtest/gtest.h>

#include "src/graph/generators.h"

namespace pitex {
namespace {

class ConstProbs final : public EdgeProbFn {
 public:
  explicit ConstProbs(double p) : p_(p) {}
  double Prob(EdgeId) const override { return p_; }

 private:
  double p_;
};

TEST(ExactTest, SingleEdge) {
  GraphBuilder b(2);
  b.AddEdge(0, 1);
  Graph g = b.Build();
  EXPECT_NEAR(ExactInfluence(g, ConstProbs(0.3), 0), 1.3, 1e-12);
}

TEST(ExactTest, ChainClosedForm) {
  // E[I] over a chain = sum_i p^i.
  Graph g = Chain(4);
  const double p = 0.4;
  EXPECT_NEAR(ExactInfluence(g, ConstProbs(p), 0),
              1 + p + p * p + p * p * p, 1e-12);
}

TEST(ExactTest, DiamondIndependentPaths) {
  // 0->1->3, 0->2->3 with p everywhere:
  // P(3 active) = 1 - (1 - p^2)^2.
  GraphBuilder b(4);
  b.AddEdge(0, 1);
  b.AddEdge(0, 2);
  b.AddEdge(1, 3);
  b.AddEdge(2, 3);
  Graph g = b.Build();
  const double p = 0.5;
  const double expected = 1 + 2 * p + (1 - (1 - p * p) * (1 - p * p));
  EXPECT_NEAR(ExactInfluence(g, ConstProbs(p), 0), expected, 1e-12);
}

TEST(ExactTest, DeterministicEdges) {
  Graph g = Chain(10);
  EXPECT_NEAR(ExactInfluence(g, ConstProbs(1.0), 0), 10.0, 1e-12);
}

TEST(ExactTest, ZeroEdges) {
  Graph g = Chain(10);
  EXPECT_NEAR(ExactInfluence(g, ConstProbs(0.0), 0), 1.0, 1e-12);
}

TEST(ExactTest, CycleHandled) {
  // 0 -> 1 -> 0 cycle plus 1 -> 2.
  GraphBuilder b(3);
  b.AddEdge(0, 1);
  b.AddEdge(1, 0);
  b.AddEdge(1, 2);
  Graph g = b.Build();
  const double p = 0.5;
  // From 0: 1 active w.p. 0.5; 2 active w.p. 0.25; the back edge to 0
  // changes nothing (0 already active).
  EXPECT_NEAR(ExactInfluence(g, ConstProbs(p), 0), 1.75, 1e-12);
}

TEST(ExactTest, MixedCertainAndRandomEdges) {
  class MixedProbs final : public EdgeProbFn {
   public:
    double Prob(EdgeId e) const override { return e == 0 ? 1.0 : 0.5; }
  };
  Graph g = Chain(3);  // 0 -> 1 (certain) -> 2 (coin)
  EXPECT_NEAR(ExactInfluence(g, MixedProbs(), 0), 2.5, 1e-12);
}

TEST(ExactDeathTest, RejectsTooManyRandomEdges) {
  Rng rng(1);
  Graph g = ErdosRenyi(40, 200, &rng);
  EXPECT_DEATH(ExactInfluence(g, ConstProbs(0.5), 0), "too large");
}

}  // namespace
}  // namespace pitex
