// Kill-9 crash drills for the durability subsystem (docs/robustness.md,
// "Durability"). Each drill forks a child that serves a durable
// PitexService and arms a kCrash fail point -- the process dies by
// SIGKILL mid-append, mid-fsync, mid-checkpoint-rename, or mid-replay,
// with no destructors, no stream flushes, no sanitizer teardown: the
// closest in-process stand-in for a power cut. The child reports every
// acknowledged batch through a pipe before it dies; the parent then
// recovers from the surviving directory and asserts the two durability
// invariants end to end:
//
//   1. zero acknowledged-update loss -- every batch acknowledged before
//      the kill is present in the recovered state;
//   2. bit-identical recovery -- the recovered service answers every
//      query exactly like a never-crashed reference that applied the
//      same batches (same tags, same influence doubles, same epoch).
//
// Fork discipline: the parent never spawns threads before forking, and
// the child never returns into gtest (it dies at the fail point, or
// _exit(42)s to flag a drill that failed to crash).

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdint>
#include <filesystem>
#include <limits>
#include <string>
#include <vector>

#include "running_example.h"
#include "src/serve/pitex_service.h"
#include "src/serve/recovery.h"
#include "src/serve/wal.h"
#include "src/util/failpoint.h"

namespace pitex {
namespace {

namespace fs = std::filesystem;

class CrashRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FailpointRegistry::Instance().DisableAll();
    dir_ = (fs::temp_directory_path() /
            ("pitex_crash_recovery_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
    fs::remove_all(dir_);
  }
  void TearDown() override {
    FailpointRegistry::Instance().DisableAll();
    fs::remove_all(dir_);
  }

  static ServeOptions DurableOptions(const std::string& dir,
                                     uint64_t checkpoint_every = 2) {
    ServeOptions options;
    options.engine.method = Method::kIndexEst;
    options.engine.index_theta_per_vertex = 150.0;
    options.engine.seed = 5;
    options.num_threads = 2;
    options.mode = ScheduleMode::kWorkStealing;
    options.enable_updates = true;
    options.publish_backoff_initial_ms = 0.1;
    options.publish_backoff_max_ms = 1.0;
    options.durability_dir = dir;
    options.checkpoint_every = checkpoint_every;
    return options;
  }

  static EdgeInfluenceUpdate MakeUpdate(const SocialNetwork& n,
                                        uint64_t round) {
    EdgeInfluenceUpdate update;
    update.edge = static_cast<EdgeId>(round % n.num_edges());
    update.entries = {{static_cast<TopicId>(round % n.topics.num_topics()),
                       0.2 + 0.1 * static_cast<double>(round % 5)}};
    return update;
  }

  /// Child body: arm `point` to SIGKILL after `skip` evaluations, then
  /// serve updates until the kill lands. Never returns into gtest.
  [[noreturn]] static void ChildCrashRun(const SocialNetwork& n,
                                         const std::string& dir,
                                         const char* point, uint64_t skip,
                                         uint64_t checkpoint_every,
                                         int ack_fd) {
    FailpointConfig config;
    config.mode = FailpointMode::kCrash;
    config.skip = skip;
    FailpointRegistry::Instance().Enable(point, config);
    PitexService service(&n, DurableOptions(dir, checkpoint_every));
    service.Start();
    for (uint32_t round = 0; round < 64; ++round) {
      std::vector<EdgeInfluenceUpdate> batch{MakeUpdate(n, round)};
      if (service.ApplyUpdates(batch) != 0) {
        // Acknowledge to the parent ONLY after ApplyUpdates returned:
        // this is the exact acknowledgement the durability guarantee
        // covers.
        (void)!::write(ack_fd, &round, sizeof(round));
      }
    }
    ::_exit(42);  // the armed point never fired: the parent fails the test
  }

  /// Forks the crash child, collects its acknowledgement stream, and
  /// asserts it died by SIGKILL at the fail point. Returns the rounds
  /// the child acknowledged before dying.
  std::vector<uint32_t> RunCrashChild(const SocialNetwork& n,
                                      const char* point, uint64_t skip,
                                      uint64_t checkpoint_every = 2) {
    int pipe_fds[2];
    EXPECT_EQ(::pipe(pipe_fds), 0);
    const pid_t pid = ::fork();
    EXPECT_GE(pid, 0);
    if (pid == 0) {
      ::close(pipe_fds[0]);
      ChildCrashRun(n, dir_, point, skip, checkpoint_every, pipe_fds[1]);
    }
    ::close(pipe_fds[1]);
    std::vector<uint32_t> acked;
    uint32_t round = 0;
    while (::read(pipe_fds[0], &round, sizeof(round)) ==
           static_cast<ssize_t>(sizeof(round))) {
      acked.push_back(round);
    }
    ::close(pipe_fds[0]);
    int status = 0;
    EXPECT_EQ(::waitpid(pid, &status, 0), pid);
    EXPECT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL)
        << "child did not die at fail point " << point << " (status "
        << status << ")";
    return acked;
  }

  /// Recovers from dir_ and proves both durability invariants against a
  /// never-crashed reference.
  void VerifyRecoveredBitIdentical(const SocialNetwork& n, size_t acked,
                                   uint64_t checkpoint_every = 2) {
    PitexService recovered(&n, DurableOptions(dir_, checkpoint_every));
    recovered.Start();
    const uint64_t epoch = recovered.current_epoch();
    ASSERT_GE(epoch, 1u);
    // Epochs count the initial publish plus one per applied batch, so
    // the recovered epoch tells us exactly how much history survived.
    const uint64_t applied = epoch - 1;
    // Invariant 1: nothing acknowledged is lost. The one-past bound is
    // the batch that reached the log but died before its ack -- replay
    // may legally include it (durable, just never reported).
    ASSERT_GE(applied, acked) << "acknowledged updates lost";
    ASSERT_LE(applied, acked + 1);

    PitexService reference(&n, DurableOptions("", checkpoint_every));
    reference.Start();
    for (uint64_t i = 0; i < applied; ++i) {
      std::vector<EdgeInfluenceUpdate> batch{MakeUpdate(n, i)};
      ASSERT_NE(reference.ApplyUpdates(batch), 0u);
    }
    ASSERT_EQ(recovered.current_epoch(), reference.current_epoch());

    // Invariant 2: bit-identical answers. Sequential submits place each
    // user on the same (deterministically seeded) worker in both
    // services, so tags AND the influence doubles must match exactly.
    for (VertexId user = 0; user < n.num_vertices(); ++user) {
      const PitexQuery query = {.user = user, .k = 2};
      const ServedResult got = recovered.Submit(query).get();
      const ServedResult want = reference.Submit(query).get();
      ASSERT_EQ(got.status, ServeStatus::kOk);
      ASSERT_EQ(got.result.tags, want.result.tags) << "user " << user;
      ASSERT_EQ(got.result.influence, want.result.influence)
          << "user " << user;
    }
  }

  std::string dir_;
};

TEST_F(CrashRecoveryTest, CleanRestartRecoversExactly) {
  // No faults at all: a clean shutdown + restart must resume with the
  // identical state and epoch (the baseline the crash drills refine).
  const SocialNetwork n = MakeRunningExample();
  constexpr size_t kRounds = 5;
  {
    PitexService service(&n, DurableOptions(dir_));
    service.Start();
    for (uint64_t i = 0; i < kRounds; ++i) {
      std::vector<EdgeInfluenceUpdate> batch{MakeUpdate(n, i)};
      ASSERT_EQ(service.ApplyUpdates(batch), static_cast<uint64_t>(i + 2));
    }
    const ServiceStats stats = service.Stats();
    EXPECT_EQ(stats.wal_appends, kRounds);
    EXPECT_GT(stats.wal_fsyncs, 0u);
    EXPECT_EQ(stats.wal_append_failures, 0u);
    EXPECT_EQ(stats.checkpoints, kRounds / 2);  // checkpoint_every = 2
    EXPECT_EQ(stats.checkpoint_failures, 0u);
  }
  ASSERT_TRUE(fs::exists(dir_ + "/CHECKPOINT"));
  VerifyRecoveredBitIdentical(n, kRounds);

  // The replay counter reflects only the WAL tail past the checkpoint.
  PitexService again(&n, DurableOptions(dir_));
  again.Start();
  EXPECT_LE(again.Stats().recovery_replayed_lsns, kRounds - kRounds / 2 * 2 + 1);
}

TEST_F(CrashRecoveryTest, SigkillAtWalAppend) {
#if !PITEX_FAILPOINTS_ENABLED
  GTEST_SKIP() << "fail points compiled out (-DPITEX_FAILPOINTS=OFF)";
#endif
  const SocialNetwork n = MakeRunningExample();
  // skip=3: the fourth append dies before its record reaches the file.
  const std::vector<uint32_t> acked = RunCrashChild(n, "wal/append", 3);
  EXPECT_EQ(acked.size(), 3u);
  VerifyRecoveredBitIdentical(n, acked.size());
}

TEST_F(CrashRecoveryTest, SigkillAtWalFsync) {
#if !PITEX_FAILPOINTS_ENABLED
  GTEST_SKIP() << "fail points compiled out (-DPITEX_FAILPOINTS=OFF)";
#endif
  const SocialNetwork n = MakeRunningExample();
  // The fifth commit point dies AFTER the record's write(2): the batch
  // may survive in the log without ever having been acknowledged --
  // exactly the one-past case the verifier tolerates.
  const std::vector<uint32_t> acked = RunCrashChild(n, "wal/fsync", 4);
  EXPECT_EQ(acked.size(), 4u);
  VerifyRecoveredBitIdentical(n, acked.size());
}

TEST_F(CrashRecoveryTest, SigkillAtFirstWalSyncEver) {
#if !PITEX_FAILPOINTS_ENABLED
  GTEST_SKIP() << "fail points compiled out (-DPITEX_FAILPOINTS=OFF)";
#endif
  const SocialNetwork n = MakeRunningExample();
  // Degenerate drill: death before ANY batch commits. Recovery must
  // come up empty-handed but serving, identical to a fresh build.
  const std::vector<uint32_t> acked = RunCrashChild(n, "wal/fsync", 0);
  EXPECT_TRUE(acked.empty());
  VerifyRecoveredBitIdentical(n, 0);
}

TEST_F(CrashRecoveryTest, SigkillAtCheckpointRename) {
#if !PITEX_FAILPOINTS_ENABLED
  GTEST_SKIP() << "fail points compiled out (-DPITEX_FAILPOINTS=OFF)";
#endif
  const SocialNetwork n = MakeRunningExample();
  // checkpoint_every=2: the second checkpoint (after batch 4) dies
  // between manifest staging and its atomic rename. The first
  // checkpoint plus the WAL tail above it must carry recovery; the
  // half-written second checkpoint may leave only a *.tmp behind,
  // never a corrupt CHECKPOINT.
  const std::vector<uint32_t> acked =
      RunCrashChild(n, "checkpoint/rename", 1);
  EXPECT_EQ(acked.size(), 3u);  // batch 4's ack dies with the checkpoint
  VerifyRecoveredBitIdentical(n, acked.size());
}

TEST_F(CrashRecoveryTest, SigkillDuringRecoveryReplayThenRecoverAgain) {
#if !PITEX_FAILPOINTS_ENABLED
  GTEST_SKIP() << "fail points compiled out (-DPITEX_FAILPOINTS=OFF)";
#endif
  const SocialNetwork n = MakeRunningExample();
  // First crash leaves a WAL with several records to replay
  // (checkpoint_every=0 keeps everything in the log).
  const std::vector<uint32_t> acked =
      RunCrashChild(n, "wal/fsync", 5, /*checkpoint_every=*/0);
  EXPECT_EQ(acked.size(), 5u);
  // Second child dies BY SIGKILL mid-replay, inside Start()'s recovery.
  // Replay only reads; the log must survive the second death unscathed.
  const std::vector<uint32_t> none =
      RunCrashChild(n, "recovery/replay", 2, /*checkpoint_every=*/0);
  EXPECT_TRUE(none.empty());
  // Third recovery completes and is still bit-identical.
  VerifyRecoveredBitIdentical(n, acked.size(), /*checkpoint_every=*/0);
}

TEST_F(CrashRecoveryTest, InjectedReplayErrorFailsRecoveryLoudly) {
#if !PITEX_FAILPOINTS_ENABLED
  GTEST_SKIP() << "fail points compiled out (-DPITEX_FAILPOINTS=OFF)";
#endif
  const SocialNetwork n = MakeRunningExample();
  {
    PitexService service(&n, DurableOptions(dir_, /*checkpoint_every=*/0));
    service.Start();
    for (uint64_t i = 0; i < 3; ++i) {
      std::vector<EdgeInfluenceUpdate> batch{MakeUpdate(n, i)};
      ASSERT_NE(service.ApplyUpdates(batch), 0u);
    }
  }
  FailpointConfig config;
  config.mode = FailpointMode::kError;
  config.fires = 1;
  FailpointRegistry::Instance().Enable("recovery/replay", config);
  RrIndexOptions index_options;
  index_options.theta_per_vertex = 150.0;
  index_options.seed = 5;
  RecoveredState state;
  std::string error;
  EXPECT_FALSE(RecoverServingState(n, index_options, dir_, &state, &error));
  EXPECT_NE(error.find("recovery/replay"), std::string::npos) << error;
  FailpointRegistry::Instance().DisableAll();
  // The fault was transient; the log itself is fine.
  EXPECT_TRUE(RecoverServingState(n, index_options, dir_, &state, &error))
      << error;
  EXPECT_EQ(state.replayed_records, 3u);
}

TEST_F(CrashRecoveryTest, WalCommitFailureRejectsBatchWithoutApplying) {
#if !PITEX_FAILPOINTS_ENABLED
  GTEST_SKIP() << "fail points compiled out (-DPITEX_FAILPOINTS=OFF)";
#endif
  // Error-mode (non-crash) flavor of the same boundary: when the WAL
  // cannot commit, the batch must be fully rejected -- no master
  // mutation, no epoch, and the log rolled back -- so a later retry is
  // the FIRST application, not a double one.
  const SocialNetwork n = MakeRunningExample();
  PitexService service(&n, DurableOptions(dir_));
  service.Start();

  FailpointConfig config;
  config.mode = FailpointMode::kError;
  config.fires = 1;
  FailpointRegistry::Instance().Enable("wal/fsync", config);
  std::vector<EdgeInfluenceUpdate> batch{MakeUpdate(n, 0)};
  ApplyUpdatesOutcome outcome;
  EXPECT_EQ(service.ApplyUpdates(batch, &outcome), 0u);
  // kWalFailed is the retryable rejection: the caller is told the batch
  // was neither durable nor applied.
  EXPECT_EQ(outcome, ApplyUpdatesOutcome::kWalFailed);
  FailpointRegistry::Instance().DisableAll();
  {
    const ServiceStats stats = service.Stats();
    EXPECT_EQ(stats.wal_append_failures, 1u);
    EXPECT_EQ(stats.current_epoch, 1u);  // nothing applied or published
  }
  // Retry commits cleanly at the first LSN. (The appends counter saw
  // both the rolled-back attempt and the retry.)
  EXPECT_EQ(service.ApplyUpdates(batch, &outcome), 2u);
  EXPECT_EQ(outcome, ApplyUpdatesOutcome::kPublished);
  EXPECT_EQ(service.Stats().wal_appends, 2u);
}

TEST_F(CrashRecoveryTest, MalformedBatchRejectedBeforeItPoisonsTheLog) {
  // An invalid batch must be rejected BEFORE the WAL append: were it
  // committed first, the abort it used to cause in the master would
  // recur as a recovery failure on every restart -- one bad call turned
  // into a permanent crash loop, with everything acknowledged since the
  // last checkpoint unreachable behind the poison record.
  const SocialNetwork n = MakeRunningExample();
  {
    PitexService service(&n, DurableOptions(dir_));
    service.Start();
    std::vector<EdgeInfluenceUpdate> good{MakeUpdate(n, 0)};
    ASSERT_EQ(service.ApplyUpdates(good), 2u);

    ApplyUpdatesOutcome outcome;
    std::vector<EdgeInfluenceUpdate> bad_edge{MakeUpdate(n, 0)};
    bad_edge[0].edge = static_cast<EdgeId>(n.num_edges());  // out of range
    EXPECT_EQ(service.ApplyUpdates(bad_edge, &outcome), 0u);
    EXPECT_EQ(outcome, ApplyUpdatesOutcome::kInvalidBatch);

    std::vector<EdgeInfluenceUpdate> bad_prob{MakeUpdate(n, 1)};
    bad_prob[0].entries[0].prob = 1.5;
    EXPECT_EQ(service.ApplyUpdates(bad_prob, &outcome), 0u);
    EXPECT_EQ(outcome, ApplyUpdatesOutcome::kInvalidBatch);

    std::vector<EdgeInfluenceUpdate> bad_nan{MakeUpdate(n, 2)};
    bad_nan[0].entries[0].prob = std::numeric_limits<double>::quiet_NaN();
    EXPECT_EQ(service.ApplyUpdates(bad_nan, &outcome), 0u);
    EXPECT_EQ(outcome, ApplyUpdatesOutcome::kInvalidBatch);

    // Nothing reached the log or the master: epoch and append counters
    // only reflect the one good batch.
    const ServiceStats stats = service.Stats();
    EXPECT_EQ(stats.current_epoch, 2u);
    EXPECT_EQ(stats.wal_appends, 1u);
    EXPECT_EQ(stats.wal_append_failures, 0u);

    // The service keeps accepting valid batches after the rejections.
    EXPECT_EQ(service.ApplyUpdates(good), 3u);
  }
  // The log holds only the two valid records, so restart recovers
  // cleanly and bit-identically -- the poison never became durable.
  PitexService recovered(&n, DurableOptions(dir_));
  recovered.Start();
  ASSERT_EQ(recovered.current_epoch(), 3u);
  PitexService reference(&n, DurableOptions(""));
  reference.Start();
  std::vector<EdgeInfluenceUpdate> good{MakeUpdate(n, 0)};
  ASSERT_EQ(reference.ApplyUpdates(good), 2u);
  ASSERT_EQ(reference.ApplyUpdates(good), 3u);
  for (VertexId user = 0; user < n.num_vertices(); ++user) {
    const PitexQuery query = {.user = user, .k = 2};
    const ServedResult got = recovered.Submit(query).get();
    const ServedResult want = reference.Submit(query).get();
    ASSERT_EQ(got.status, ServeStatus::kOk);
    ASSERT_EQ(got.result.tags, want.result.tags) << "user " << user;
    ASSERT_EQ(got.result.influence, want.result.influence)
        << "user " << user;
  }
}

}  // namespace
}  // namespace pitex
