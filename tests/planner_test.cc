// Tests for the cost-based query planner (src/core/planner.h): sane
// network profiles, monotone decisions (more queries favor the index),
// and constraint handling (memory profile, pre-built index).

#include "src/core/planner.h"

#include <gtest/gtest.h>

#include "running_example.h"
#include "src/datasets/synthetic.h"

namespace pitex {
namespace {

TEST(QueryPlannerTest, ProfileIsPlausible) {
  const SocialNetwork n = MakeRunningExample();
  const QueryPlanner planner(&n);
  const NetworkProfile& profile = planner.profile();
  EXPECT_GE(profile.avg_envelope_reach, 1.0);
  EXPECT_LE(profile.avg_envelope_reach,
            static_cast<double>(n.num_vertices()));
  EXPECT_GE(profile.avg_rr_graph_size, 1.0);
  EXPECT_GT(profile.avg_theta_u_fraction, 0.0);
  EXPECT_LE(profile.avg_theta_u_fraction, 1.0);
  // Fig. 2's p(w|z) table has 8 of 12 entries non-zero.
  EXPECT_NEAR(profile.tag_topic_density, 8.0 / 12.0, 1e-9);
}

TEST(QueryPlannerTest, SingleQueryOnSparseGraphPrefersOnline) {
  // Twitter-shaped analog: many vertices, tiny envelope reach. A single
  // k=1 query cannot amortize sampling |V| RR-Graphs. (The index wins
  // surprisingly often elsewhere: with sparse reverse reach, theta
  // RR-Graphs cost less than one full online PITEX query evaluating
  // thousands of candidate tag sets — which is the paper's own pitch.)
  DatasetSpec spec = TwitterSpec(0.05);
  spec.seed = 31;
  const SocialNetwork n = GenerateDataset(spec);
  const QueryPlanner planner(&n);

  PlannerInputs inputs;
  inputs.expected_queries = 1;
  inputs.k = 1;
  const PlanDecision decision = planner.Plan(inputs);
  EXPECT_EQ(decision.method, Method::kLazy) << decision.rationale;
  EXPECT_GT(decision.index_build_cost, 0.0);
}

TEST(QueryPlannerTest, ManyQueriesPreferIndex) {
  DatasetSpec spec = LastfmSpec(0.5);
  spec.seed = 31;
  const SocialNetwork n = GenerateDataset(spec);
  const QueryPlanner planner(&n);

  PlannerInputs inputs;
  inputs.expected_queries = 100000000;
  const PlanDecision decision = planner.Plan(inputs);
  EXPECT_EQ(decision.method, Method::kIndexEstPlus) << decision.rationale;
}

TEST(QueryPlannerTest, DecisionIsMonotoneInQueryCount) {
  DatasetSpec spec = DiggsSpec(0.05);
  spec.seed = 3;
  const SocialNetwork n = GenerateDataset(spec);
  const QueryPlanner planner(&n);

  bool seen_index = false;
  PlannerInputs inputs;
  for (uint64_t queries = 1; queries <= 1ULL << 40; queries *= 16) {
    inputs.expected_queries = queries;
    const PlanDecision decision = planner.Plan(inputs);
    const bool is_index = decision.method != Method::kLazy;
    // Once the index wins it must keep winning for larger workloads.
    EXPECT_TRUE(is_index || !seen_index)
        << "non-monotone at " << queries << ": " << decision.rationale;
    seen_index = seen_index || is_index;
  }
  EXPECT_TRUE(seen_index);  // some workload justifies the build
}

TEST(QueryPlannerTest, MemoryConstrainedPicksDelayMat) {
  const SocialNetwork n = MakeRunningExample();
  const QueryPlanner planner(&n);
  PlannerInputs inputs;
  inputs.expected_queries = 1ULL << 40;
  inputs.memory_constrained = true;
  const PlanDecision decision = planner.Plan(inputs);
  EXPECT_EQ(decision.method, Method::kDelayMat) << decision.rationale;
}

TEST(QueryPlannerTest, AvailableIndexZeroesBuildCost) {
  const SocialNetwork n = MakeRunningExample();
  const QueryPlanner planner(&n);
  PlannerInputs inputs;
  inputs.expected_queries = 1;
  inputs.index_available = true;
  const PlanDecision decision = planner.Plan(inputs);
  EXPECT_EQ(decision.index_build_cost, 0.0);
  EXPECT_NE(decision.method, Method::kLazy) << decision.rationale;
}

TEST(QueryPlannerTest, ExpectedSetsShrinkWithSparserModels) {
  DatasetSpec dense = LastfmSpec(0.3);
  dense.tag_topic_density = 0.6;
  dense.seed = 5;
  DatasetSpec sparse = dense;
  sparse.tag_topic_density = 0.05;
  const SocialNetwork dense_net = GenerateDataset(dense);
  const SocialNetwork sparse_net = GenerateDataset(sparse);
  const QueryPlanner dense_planner(&dense_net);
  const QueryPlanner sparse_planner(&sparse_net);
  // Sec. 7.3: lower density -> stronger best-effort pruning -> fewer
  // evaluated tag sets.
  EXPECT_LT(sparse_planner.ExpectedSetsPerQuery(3),
            dense_planner.ExpectedSetsPerQuery(3));
}

TEST(QueryPlannerTest, ExpectedSetsGrowWithVocabulary) {
  DatasetSpec small = LastfmSpec(0.3);
  small.num_tags = 10;
  small.seed = 5;
  DatasetSpec big = small;
  big.num_tags = 60;
  const SocialNetwork small_net = GenerateDataset(small);
  const SocialNetwork big_net = GenerateDataset(big);
  const QueryPlanner small_planner(&small_net);
  const QueryPlanner big_planner(&big_net);
  EXPECT_LT(small_planner.ExpectedSetsPerQuery(2),
            big_planner.ExpectedSetsPerQuery(2));
}

TEST(QueryPlannerTest, RationaleMentionsTheWinner) {
  const SocialNetwork n = MakeRunningExample();
  const QueryPlanner planner(&n);
  PlannerInputs inputs;
  inputs.expected_queries = 1ULL << 40;
  const PlanDecision decision = planner.Plan(inputs);
  EXPECT_NE(decision.rationale.find("index"), std::string::npos);
}

TEST(QueryPlannerTest, PlannedMethodRunsEndToEnd) {
  const SocialNetwork n = MakeRunningExample();
  const QueryPlanner planner(&n);
  PlannerInputs inputs;
  inputs.expected_queries = 500;
  const PlanDecision decision = planner.Plan(inputs);

  EngineOptions options;
  options.method = decision.method;
  options.index_theta_per_vertex = 100.0;
  PitexEngine engine(&n, options);
  engine.BuildIndex();
  const PitexResult result = engine.Explore({.user = 0, .k = 2});
  EXPECT_EQ(result.tags.size(), 2u);
  EXPECT_GE(result.influence, 1.0);
}

}  // namespace
}  // namespace pitex
