// Tests for the per-estimate standard errors (Estimate::std_error):
// calibration against the exact oracle (the error bar must cover the
// truth at roughly its nominal rate), 1/sqrt(n) shrinkage, and zero for
// deterministic regimes.

#include <gtest/gtest.h>

#include <cmath>

#include "running_example.h"
#include "src/index/rr_index.h"
#include "src/sampling/exact.h"
#include "src/sampling/lazy_sampler.h"
#include "src/sampling/lt_sampler.h"
#include "src/sampling/mc_sampler.h"
#include "src/sampling/rr_sampler.h"
#include "src/sampling/tim_estimator.h"

namespace pitex {
namespace {

TEST(SampleMeanStdErrorTest, Formula) {
  // Observations {1, 3}: mean 2, s^2 = 2, stderr = 1.
  EXPECT_DOUBLE_EQ(SampleMeanStdError(4.0, 10.0, 2), 1.0);
  // Single observation or none: undefined -> 0.
  EXPECT_DOUBLE_EQ(SampleMeanStdError(5.0, 25.0, 1), 0.0);
  EXPECT_DOUBLE_EQ(SampleMeanStdError(0.0, 0.0, 0), 0.0);
  // Constant observations: 0 (clamped against fp noise).
  EXPECT_DOUBLE_EQ(SampleMeanStdError(10.0, 20.0, 5), 0.0);
}

template <typename Sampler>
void CheckCalibration(const char* label) {
  const SocialNetwork n = MakeRunningExample();
  const TagId tags[] = {2, 3};
  const auto post = n.topics.Posterior(tags);
  const PosteriorProbs probs(n.influence, post);
  const double exact = ExactInfluence(n.graph, probs, 0);

  SampleSizePolicy policy;
  policy.min_samples = 400;
  policy.max_samples = 400;

  // Across many independent runs, |estimate - exact| <= 3 * std_error
  // should hold essentially always (nominal miss rate ~0.3%); allow a
  // couple of misses for the tails.
  int covered = 0;
  const int kRuns = 40;
  for (int run = 0; run < kRuns; ++run) {
    Sampler sampler(n.graph, policy, 1000 + run);
    const Estimate est = sampler.EstimateInfluence(0, probs);
    EXPECT_GT(est.std_error, 0.0) << label;
    covered += std::abs(est.influence - exact) <= 3.0 * est.std_error;
  }
  EXPECT_GE(covered, kRuns - 4) << label;
}

TEST(StdErrorTest, McCalibrated) { CheckCalibration<McSampler>("MC"); }
TEST(StdErrorTest, RrCalibrated) { CheckCalibration<RrSampler>("RR"); }
TEST(StdErrorTest, LazyCalibrated) { CheckCalibration<LazySampler>("LAZY"); }

TEST(StdErrorTest, ShrinksWithSampleCount) {
  const SocialNetwork n = MakeRunningExample();
  const TagId tags[] = {2, 3};
  const auto post = n.topics.Posterior(tags);
  const PosteriorProbs probs(n.influence, post);

  auto stderr_at = [&](uint64_t samples) {
    SampleSizePolicy policy;
    policy.min_samples = samples;
    policy.max_samples = samples;
    McSampler sampler(n.graph, policy, 7);
    return sampler.EstimateInfluence(0, probs).std_error;
  };
  const double coarse = stderr_at(100);
  const double fine = stderr_at(6400);
  // 64x samples -> ~8x smaller stderr; allow a generous band.
  EXPECT_GT(coarse / fine, 4.0);
  EXPECT_LT(coarse / fine, 16.0);
}

TEST(StdErrorTest, DeterministicSpreadHasZeroError) {
  // Chain with p = 1: every instance activates everything.
  SocialNetwork n;
  GraphBuilder graph(4);
  graph.AddEdge(0, 1);
  graph.AddEdge(1, 2);
  graph.AddEdge(2, 3);
  n.graph = graph.Build();
  n.topics = TopicModel(1, 1);
  n.topics.SetTagTopic(0, 0, 1.0);
  InfluenceGraphBuilder influence(3);
  for (EdgeId e = 0; e < 3; ++e) {
    const EdgeTopicEntry entry{0, 1.0};
    influence.SetEdgeTopics(e, std::span(&entry, 1));
  }
  n.influence = influence.Build();

  SampleSizePolicy policy;
  policy.min_samples = 64;
  policy.max_samples = 64;
  McSampler sampler(n.graph, policy, 3);
  const TagId tags[] = {0};
  const auto post = n.topics.Posterior(tags);
  const PosteriorProbs probs(n.influence, post);
  const Estimate est = sampler.EstimateInfluence(0, probs);
  EXPECT_DOUBLE_EQ(est.influence, 4.0);
  EXPECT_DOUBLE_EQ(est.std_error, 0.0);
}

TEST(StdErrorTest, TimIsDeterministic) {
  const SocialNetwork n = MakeRunningExample();
  TimEstimator tim(n.graph, TimOptions{});
  const TagId tags[] = {2, 3};
  const auto post = n.topics.Posterior(tags);
  const PosteriorProbs probs(n.influence, post);
  EXPECT_DOUBLE_EQ(tim.EstimateInfluence(0, probs).std_error, 0.0);
}

TEST(StdErrorTest, IndexEstCalibrated) {
  const SocialNetwork n = MakeRunningExample();
  const TagId tags[] = {2, 3};
  const auto post = n.topics.Posterior(tags);
  const PosteriorProbs probs(n.influence, post);
  const double exact = ExactInfluence(n.graph, probs, 0);

  int covered = 0;
  const int kRuns = 25;
  for (int run = 0; run < kRuns; ++run) {
    RrIndexOptions options;
    options.theta_override = 4000;
    options.seed = 500 + run;
    RrIndex index(n, options);
    index.Build();
    const Estimate est = index.EstimateInfluence(0, probs);
    EXPECT_GT(est.std_error, 0.0);
    covered += std::abs(est.influence - exact) <= 3.0 * est.std_error;
  }
  EXPECT_GE(covered, kRuns - 3);
}

TEST(StdErrorTest, LtReportsError) {
  const SocialNetwork n = MakeRunningExample();
  SampleSizePolicy policy;
  policy.min_samples = 200;
  policy.max_samples = 200;
  LtSampler sampler(n.graph, policy, 3);
  const TagId tags[] = {2, 3};
  const auto post = n.topics.Posterior(tags);
  const PosteriorProbs probs(n.influence, post);
  EXPECT_GT(sampler.EstimateInfluence(0, probs).std_error, 0.0);
}

}  // namespace
}  // namespace pitex
