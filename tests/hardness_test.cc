// Tests for the hardness constructions (Sec. 3.2): the Lemma-1 Set-Cover
// reduction and the Theorem-1 PITEX gadget.

#include <gtest/gtest.h>

#include "src/core/hardness.h"
#include "src/sampling/exact.h"

namespace pitex {
namespace {

// Set cover instance: universe {0,1,2,3}, subsets S0={0,1}, S1={1,2},
// S2={2,3}, S3={0,3}. Covers of size 2: {S0,S2} and {S1,S3}.
LabeledGraph MakeCoverInstance() {
  return BuildKLabelFromSetCover(4, {{0, 1}, {1, 2}, {2, 3}, {0, 3}});
}

TEST(KLabelTest, CoveringLabelsReach) {
  const LabeledGraph g = MakeCoverInstance();
  const uint32_t cover1[] = {0, 2};
  const uint32_t cover2[] = {1, 3};
  EXPECT_TRUE(LabelReachable(g, cover1, 0, 4));
  EXPECT_TRUE(LabelReachable(g, cover2, 0, 4));
}

TEST(KLabelTest, NonCoveringLabelsDoNotReach) {
  const LabeledGraph g = MakeCoverInstance();
  const uint32_t not_cover1[] = {0, 1};  // misses element 3
  const uint32_t not_cover2[] = {2, 3};  // misses element 1
  const uint32_t single[] = {0};
  EXPECT_FALSE(LabelReachable(g, not_cover1, 0, 4));
  EXPECT_FALSE(LabelReachable(g, not_cover2, 0, 4));
  EXPECT_FALSE(LabelReachable(g, single, 0, 4));
}

TEST(KLabelTest, AllLabelsAlwaysReachWhenCoverExists) {
  const LabeledGraph g = MakeCoverInstance();
  const uint32_t all[] = {0, 1, 2, 3};
  EXPECT_TRUE(LabelReachable(g, all, 0, 4));
}

TEST(KLabelTest, StructureMatchesReduction) {
  const LabeledGraph g = MakeCoverInstance();
  EXPECT_EQ(g.num_vertices, 5u);  // universe + 1
  EXPECT_EQ(g.num_labels, 4u);
  EXPECT_EQ(g.edges.size(), 8u);  // sum of subset sizes
}

TEST(HardnessGadgetTest, VertexCountIsNSquared) {
  const LabeledGraph g = MakeCoverInstance();
  const HardnessGadget gadget = BuildPitexFromKLabel(g, 0, 4);
  const size_t n = g.num_vertices;
  EXPECT_EQ(gadget.network.num_vertices(), n * n);
  EXPECT_EQ(gadget.query_user, 0u);
  EXPECT_DOUBLE_EQ(gadget.spread_threshold, static_cast<double>(n) - 1.0);
}

TEST(HardnessGadgetTest, DiagonalTagTopicMatrix) {
  const LabeledGraph g = MakeCoverInstance();
  const HardnessGadget gadget = BuildPitexFromKLabel(g, 0, 4);
  const auto& topics = gadget.network.topics;
  for (TagId w = 0; w < topics.num_tags(); ++w) {
    for (TopicId z = 0; z < topics.num_topics(); ++z) {
      EXPECT_EQ(topics.TagTopic(w, z), w == z ? 1.0 : 0.0);
    }
  }
}

// The spread dichotomy of Theorem 1's proof, checked exactly for k = 1
// (single-tag queries make the gadget graph deterministic under Eq. 1):
// if the single label reaches t, the amplification chain fires and the
// spread exceeds n^2 - n + 1; otherwise it stays below n - 1.
TEST(HardnessGadgetTest, SpreadDichotomyForSingleLabels) {
  // Universe {0}: S0 = {0} covers alone; S1 = {} never helps.
  const LabeledGraph g = BuildKLabelFromSetCover(1, {{0}, {}});
  const HardnessGadget gadget = BuildPitexFromKLabel(g, 0, 1);
  const size_t n = g.num_vertices;  // 2

  for (TagId w = 0; w < 2; ++w) {
    const TagId tags[] = {w};
    const double spread =
        ExactInfluenceForTags(gadget.network, tags, gadget.query_user);
    const uint32_t label[] = {w};
    if (LabelReachable(g, label, 0, gadget.t)) {
      // s, t and the full chain of n^2 - n vertices.
      EXPECT_GE(spread, static_cast<double>(n * n - n + 2));
    } else {
      EXPECT_LE(spread, gadget.spread_threshold);
    }
  }
}

TEST(HardnessGadgetTest, ChainIsLiveUnderEveryTopic) {
  const LabeledGraph g = BuildKLabelFromSetCover(1, {{0}});
  const HardnessGadget gadget = BuildPitexFromKLabel(g, 0, 1);
  // Chain edges (all edges beyond the original one) carry every topic.
  const auto& influence = gadget.network.influence;
  for (EdgeId e = 1; e < gadget.network.num_edges(); ++e) {
    for (TopicId z = 0; z < gadget.network.topics.num_topics(); ++z) {
      EXPECT_EQ(influence.EdgeTopicProb(e, z), 1.0);
    }
  }
}

}  // namespace
}  // namespace pitex
