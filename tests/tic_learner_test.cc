// Tests for the simplified TIC learner: parameter recovery on planted
// models and end-to-end "learn then query" behaviour.

#include <gtest/gtest.h>

#include "src/graph/generators.h"
#include "src/model/action_log.h"
#include "src/model/tic_learner.h"

namespace pitex {
namespace {

// A two-community planted network: edges within community c carry topic c
// with probability 0.6; tags 0..2 belong to topic 0, tags 3..5 to topic 1.
SocialNetwork MakePlantedNetwork() {
  SocialNetwork n;
  const size_t half = 30;
  GraphBuilder gb(2 * half);
  std::vector<std::pair<EdgeId, TopicId>> edge_topic;
  Rng rng(8);
  for (size_t c = 0; c < 2; ++c) {
    const auto base = static_cast<VertexId>(c * half);
    for (size_t i = 0; i < 4 * half; ++i) {
      const auto u = static_cast<VertexId>(base + rng.NextBounded(half));
      auto v = static_cast<VertexId>(base + rng.NextBounded(half - 1));
      if (v >= u) ++v;
      edge_topic.emplace_back(gb.AddEdge(u, v), static_cast<TopicId>(c));
    }
  }
  n.graph = gb.Build();
  n.topics = TopicModel(2, 6);
  for (TagId w = 0; w < 6; ++w) {
    n.topics.SetTagTopic(w, w < 3 ? 0 : 1, 0.8);
  }
  InfluenceGraphBuilder ib(n.graph.num_edges());
  for (const auto& [e, z] : edge_topic) {
    const EdgeTopicEntry entry{z, 0.6};
    ib.SetEdgeTopics(e, std::span(&entry, 1));
  }
  n.influence = ib.Build();
  return n;
}

TEST(TicLearnerTest, OutputShapesMatchInputs) {
  SocialNetwork planted = MakePlantedNetwork();
  Rng rng(1);
  const ActionLog log = SimulateCascades(planted, {.num_cascades = 300}, &rng);
  TicLearnerOptions options;
  options.num_topics = 2;
  const LearnedModel model = LearnTicModel(planted.graph, 6, log, options);
  EXPECT_EQ(model.topics.num_topics(), 2u);
  EXPECT_EQ(model.topics.num_tags(), 6u);
  EXPECT_EQ(model.influence.num_edges(), planted.graph.num_edges());
}

TEST(TicLearnerTest, RecoversTagClustersUpToPermutation) {
  SocialNetwork planted = MakePlantedNetwork();
  Rng rng(2);
  const ActionLog log =
      SimulateCascades(planted, {.num_cascades = 2000}, &rng);
  TicLearnerOptions options;
  options.num_topics = 2;
  options.num_iterations = 30;
  const LearnedModel model = LearnTicModel(planted.graph, 6, log, options);

  // Tags 0..2 should share a dominant learned topic, and 3..5 the other.
  auto dominant = [&](TagId w) {
    return model.topics.TagTopic(w, 0) >= model.topics.TagTopic(w, 1) ? 0 : 1;
  };
  const int d0 = dominant(0);
  EXPECT_EQ(dominant(1), d0);
  EXPECT_EQ(dominant(2), d0);
  EXPECT_EQ(dominant(3), 1 - d0);
  EXPECT_EQ(dominant(4), 1 - d0);
  EXPECT_EQ(dominant(5), 1 - d0);
}

TEST(TicLearnerTest, LearnedEdgeProbsInRange) {
  SocialNetwork planted = MakePlantedNetwork();
  Rng rng(3);
  const ActionLog log = SimulateCascades(planted, {.num_cascades = 500}, &rng);
  TicLearnerOptions options;
  options.num_topics = 2;
  const LearnedModel model = LearnTicModel(planted.graph, 6, log, options);
  for (EdgeId e = 0; e < model.influence.num_edges(); ++e) {
    for (const auto& [z, p] : model.influence.EdgeTopics(e)) {
      EXPECT_GT(p, 0.0);
      EXPECT_LE(p, 1.0);
    }
  }
}

TEST(TicLearnerTest, RecoveredProbabilitiesCorrelateWithTruth) {
  // Edges that were frequently successful in the log should get higher
  // learned probabilities than never-tried edges (which get none).
  SocialNetwork planted = MakePlantedNetwork();
  Rng rng(4);
  const ActionLog log =
      SimulateCascades(planted, {.num_cascades = 3000}, &rng);
  TicLearnerOptions options;
  options.num_topics = 2;
  const LearnedModel model = LearnTicModel(planted.graph, 6, log, options);

  // Mean learned max-prob over edges must be in the ballpark of the
  // planted 0.6 (credit assignment is approximate; wide tolerance).
  double sum = 0.0;
  size_t nonzero = 0;
  for (EdgeId e = 0; e < model.influence.num_edges(); ++e) {
    const double p = model.influence.MaxProb(e);
    if (p > 0.0) {
      sum += p;
      ++nonzero;
    }
  }
  ASSERT_GT(nonzero, model.influence.num_edges() / 4);
  const double mean = sum / static_cast<double>(nonzero);
  // The simplified credit assignment awards full credit to every possible
  // parent, so a mild upward bias over the planted 0.6 is expected.
  EXPECT_GT(mean, 0.3);
  EXPECT_LT(mean, 0.95);
}

TEST(TicLearnerTest, DeterministicUnderSeed) {
  SocialNetwork planted = MakePlantedNetwork();
  Rng rng(5);
  const ActionLog log = SimulateCascades(planted, {.num_cascades = 200}, &rng);
  TicLearnerOptions options;
  options.num_topics = 2;
  const LearnedModel a = LearnTicModel(planted.graph, 6, log, options);
  const LearnedModel b = LearnTicModel(planted.graph, 6, log, options);
  for (TagId w = 0; w < 6; ++w) {
    for (TopicId z = 0; z < 2; ++z) {
      EXPECT_DOUBLE_EQ(a.topics.TagTopic(w, z), b.topics.TagTopic(w, z));
    }
  }
}

TEST(TicLearnerTest, EmptyLogYieldsEmptyInfluence) {
  SocialNetwork planted = MakePlantedNetwork();
  const ActionLog empty;
  TicLearnerOptions options;
  options.num_topics = 2;
  const LearnedModel model = LearnTicModel(planted.graph, 6, empty, options);
  for (EdgeId e = 0; e < model.influence.num_edges(); ++e) {
    EXPECT_EQ(model.influence.MaxProb(e), 0.0);
  }
}

}  // namespace
}  // namespace pitex
