// Tests for top-N best-effort exploration.

#include <gtest/gtest.h>

#include "running_example.h"
#include "src/core/best_effort_solver.h"
#include "src/core/tagset_enumerator.h"
#include "src/sampling/exact.h"
#include "src/sampling/lazy_sampler.h"

namespace pitex {
namespace {

SampleSizePolicy TightPolicy() {
  SampleSizePolicy policy;
  policy.eps = 0.15;
  policy.num_tags = 4;
  policy.k = 2;
  policy.use_phi = true;
  policy.min_samples = 8000;
  policy.max_samples = 30000;
  return policy;
}

TEST(TopNTest, Top1MatchesSolveByBestEffort) {
  SocialNetwork n = MakeRunningExample();
  const UpperBoundContext ctx(n.topics);
  LazySampler s1(n.graph, TightPolicy(), 3);
  LazySampler s2(n.graph, TightPolicy(), 3);
  const auto top1 =
      SolveTopNByBestEffort(n, {.user = 0, .k = 2}, ctx, &s1, 1);
  const PitexResult single =
      SolveByBestEffort(n, {.user = 0, .k = 2}, ctx, &s2);
  ASSERT_EQ(top1.size(), 1u);
  EXPECT_EQ(top1[0].tags, single.tags);
}

TEST(TopNTest, RankingMatchesExactOrder) {
  SocialNetwork n = MakeRunningExample();
  const UpperBoundContext ctx(n.topics);
  LazySampler sampler(n.graph, TightPolicy(), 7);
  const auto top3 =
      SolveTopNByBestEffort(n, {.user = 0, .k = 2}, ctx, &sampler, 3);
  ASSERT_EQ(top3.size(), 3u);
  // Exact ranking: {w3,w4}=1.733 > {w1,w2}=1.5125 > cross pairs (1.5).
  EXPECT_EQ(top3[0].tags, (std::vector<TagId>{2, 3}));
  EXPECT_EQ(top3[1].tags, (std::vector<TagId>{0, 1}));
  EXPECT_GE(top3[0].influence, top3[1].influence);
  EXPECT_GE(top3[1].influence, top3[2].influence);
}

TEST(TopNTest, NLargerThanUniverseReturnsAll) {
  SocialNetwork n = MakeRunningExample();
  const UpperBoundContext ctx(n.topics);
  LazySampler sampler(n.graph, TightPolicy(), 9);
  const auto all =
      SolveTopNByBestEffort(n, {.user = 0, .k = 2}, ctx, &sampler, 100);
  EXPECT_EQ(all.size(), 6u);  // C(4,2)
  for (size_t i = 1; i < all.size(); ++i) {
    EXPECT_GE(all[i - 1].influence, all[i].influence);
  }
}

TEST(TopNTest, ResultsAreDistinctSets) {
  SocialNetwork n = MakeRunningExample();
  const UpperBoundContext ctx(n.topics);
  LazySampler sampler(n.graph, TightPolicy(), 11);
  const auto top =
      SolveTopNByBestEffort(n, {.user = 0, .k = 2}, ctx, &sampler, 4);
  for (size_t i = 0; i < top.size(); ++i) {
    for (size_t j = i + 1; j < top.size(); ++j) {
      EXPECT_NE(top[i].tags, top[j].tags);
    }
  }
}

TEST(TopNTest, StatsPopulated) {
  SocialNetwork n = MakeRunningExample();
  const UpperBoundContext ctx(n.topics);
  LazySampler sampler(n.graph, TightPolicy(), 13);
  PitexResult stats;
  const auto top =
      SolveTopNByBestEffort(n, {.user = 0, .k = 2}, ctx, &sampler, 2,
                            &stats);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(stats.tags, top[0].tags);
  EXPECT_GT(stats.sets_evaluated, 0u);
  EXPECT_GT(stats.total_samples, 0u);
}

TEST(TopNDeathTest, RejectsZeroN) {
  SocialNetwork n = MakeRunningExample();
  const UpperBoundContext ctx(n.topics);
  LazySampler sampler(n.graph, TightPolicy(), 15);
  EXPECT_DEATH(
      SolveTopNByBestEffort(n, {.user = 0, .k = 2}, ctx, &sampler, 0),
      "PITEX_CHECK");
}

}  // namespace
}  // namespace pitex
