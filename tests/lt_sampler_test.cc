// Tests for the Linear Threshold extension (paper footnote 1).

#include <gtest/gtest.h>

#include "running_example.h"
#include "src/graph/generators.h"
#include "src/sampling/lt_sampler.h"

namespace pitex {
namespace {

class ConstProbs final : public EdgeProbFn {
 public:
  explicit ConstProbs(double p) : p_(p) {}
  double Prob(EdgeId) const override { return p_; }

 private:
  double p_;
};

SampleSizePolicy FixedPolicy(uint64_t theta) {
  SampleSizePolicy policy;
  policy.eps = 1e-6;
  policy.delta = 1e12;
  policy.min_samples = theta;
  policy.max_samples = theta;
  return policy;
}

TEST(LtSamplerTest, DeterministicChainFullSpread) {
  Graph g = Chain(6);
  LtSampler lt(g, FixedPolicy(200), 1);
  const Estimate est = lt.EstimateInfluence(0, ConstProbs(1.0));
  EXPECT_NEAR(est.influence, 6.0, 1e-9);
}

TEST(LtSamplerTest, ZeroWeightsUnitSpread) {
  Graph g = Chain(6);
  LtSampler lt(g, FixedPolicy(200), 1);
  const Estimate est = lt.EstimateInfluence(0, ConstProbs(0.0));
  EXPECT_NEAR(est.influence, 1.0, 1e-9);
}

TEST(LtSamplerTest, StarMatchesLinearity) {
  // In LT, Pr[v active] equals the (clamped) expected in-weight from
  // active neighbors: for a star with weight w per edge the spread is
  // exactly 1 + n * w.
  const size_t n = 40;
  Graph g = Star(n + 1);
  LtSampler lt(g, FixedPolicy(30000), 2);
  const Estimate est = lt.EstimateInfluence(0, ConstProbs(0.3));
  EXPECT_NEAR(est.influence, 1.0 + 0.3 * n, 0.03 * (1.0 + 0.3 * n));
}

TEST(LtSamplerTest, ChainMatchesProductForm) {
  // LT on a chain: each vertex has a single in-edge, so activation is a
  // Bernoulli(w) like IC; spread = sum w^i.
  Graph g = Chain(5);
  const double w = 0.5;
  LtSampler lt(g, FixedPolicy(40000), 3);
  const Estimate est = lt.EstimateInfluence(0, ConstProbs(w));
  EXPECT_NEAR(est.influence, 1.9375, 0.05);
}

TEST(LtSamplerTest, DiamondDiffersFromIc) {
  // LT linearity: P(3 active) = E[min(1, 0.5*1[1] + 0.5*1[2])] =
  // 0.5*(P(1)+P(2)) = 0.5, whereas IC gives 1-(1-0.25)^2 = 0.4375.
  GraphBuilder b(4);
  b.AddEdge(0, 1);
  b.AddEdge(0, 2);
  b.AddEdge(1, 3);
  b.AddEdge(2, 3);
  Graph g = b.Build();
  LtSampler lt(g, FixedPolicy(60000), 4);
  const Estimate est = lt.EstimateInfluence(0, ConstProbs(0.5));
  EXPECT_NEAR(est.influence, 1.0 + 0.5 + 0.5 + 0.5, 0.04);
}

TEST(LtSamplerTest, WeightsAccumulateAcrossNeighbors) {
  // Two parents with weight 0.5 each, both always active: the child's
  // accumulated weight is 1.0 -> always activates.
  GraphBuilder b(4);
  b.AddEdge(0, 1);
  b.AddEdge(0, 2);
  b.AddEdge(1, 3);
  b.AddEdge(2, 3);
  Graph g = b.Build();
  class Weights final : public EdgeProbFn {
   public:
    double Prob(EdgeId e) const override { return e < 2 ? 1.0 : 0.5; }
  };
  LtSampler lt(g, FixedPolicy(5000), 5);
  const Estimate est = lt.EstimateInfluence(0, Weights());
  EXPECT_NEAR(est.influence, 4.0, 1e-9);
}

TEST(LtSamplerTest, WorksWithTagSetPosteriors) {
  SocialNetwork n = MakeRunningExample();
  const TagId tags[] = {2, 3};
  const auto post = n.topics.Posterior(tags);
  const PosteriorProbs probs(n.influence, post);
  LtSampler lt(n.graph, FixedPolicy(40000), 6);
  const Estimate est = lt.EstimateInfluence(0, probs);
  // LT linearity on the (tree-shaped) live graph: spread =
  // 1 + 0.5*(1 + p*(1 + p)) with p = 4.5/13 — coincides with IC on trees.
  const double p = 4.5 / 13.0;
  EXPECT_NEAR(est.influence, 1.0 + 0.5 * (1.0 + p * (1.0 + p)), 0.05);
}

}  // namespace
}  // namespace pitex
