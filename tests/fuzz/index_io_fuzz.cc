// libFuzzer harness for the index persistence layer (PITEX_FUZZ=ON,
// Clang only). Complements tests/index_io_fuzz_test.cc: that suite
// replays a fixed budget of random mutations on every CI run, while this
// harness lets libFuzzer's coverage feedback walk the v1/v2 readers'
// branch structure -- length prefixes, CSR layout checks, the checksum
// trailer -- far more systematically.
//
// Contract under test: whatever bytes arrive, LoadRrIndex and
// LoadDelayMatIndex either return a structurally consistent index or
// fail cleanly. Any crash, sanitizer report, or consistency violation
// (enforced with abort() below) is a finding.
//
// Seed corpus: set PITEX_FUZZ_SEED_DIR=<dir> and the harness writes a
// valid v2 index, a hand-assembled v1 index, and a valid DelayMat file
// there during LLVMFuzzerInitialize -- the fuzzer then starts from real
// files instead of discovering the magic string byte by byte:
//
//   mkdir -p corpus
//   PITEX_FUZZ_SEED_DIR=corpus ./index_io_fuzz -max_total_time=30 corpus

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "running_example.h"
#include "src/index/index_io.h"
#include "src/index/rr_graph.h"
#include "src/index/rr_index.h"
#include "src/util/random.h"
#include "src/util/serialize.h"

namespace pitex {
namespace {

const SocialNetwork& Network() {
  static const SocialNetwork network = MakeRunningExample();
  return network;
}

RrIndexOptions SeedOptions() {
  RrIndexOptions options;
  options.theta_override = 64;
  options.seed = 3;
  return options;
}

std::string ValidV2Bytes() {
  RrIndex index(Network(), SeedOptions());
  index.Build();
  std::stringstream file;
  SaveRrIndex(index, file);
  return file.str();
}

std::string ValidDelayBytes() {
  DelayMatIndex index(Network(), SeedOptions());
  index.Build();
  std::stringstream file;
  SaveDelayMatIndex(index, file);
  return file.str();
}

// The writer only emits the current (v2) format, so the v1 reader seed
// is assembled by hand: one record per graph, matching IndexIo::
// ReadRrGraphsV1's expectations byte for byte.
std::string ValidV1Bytes() {
  const SocialNetwork& network = Network();
  const uint64_t theta = 8;
  Rng rng(7);
  std::vector<RRGraph> graphs;
  for (uint64_t i = 0; i < theta; ++i) {
    graphs.push_back(GenerateRRGraph(
        network.graph, network.influence,
        static_cast<VertexId>(i % network.num_vertices()), &rng));
  }
  std::stringstream file;
  BinaryWriter writer(&file);
  writer.WriteString("PITEXIDX");
  writer.WriteU32(1);  // version
  writer.WriteU8(1);   // kind: RR-Graphs
  writer.WriteU64(NetworkFingerprint(network));
  writer.WriteF64(0.1);                    // eps
  writer.WriteF64(0.1);                    // delta
  writer.WriteU64(0);                      // cap_k
  writer.WriteU64(SeedOptions().seed);     // seed
  writer.WriteU64(theta);
  writer.WriteU64(graphs.size());
  for (const RRGraph& rr : graphs) {
    writer.WriteU32(rr.root);
    writer.WriteVector<VertexId>(rr.vertices);
    writer.WriteVector<uint32_t>(rr.offsets);
    writer.WriteU64(rr.edges.size());
    for (const RRLocalEdge& edge : rr.edges) {
      writer.WriteU32(edge.head_local);
      writer.WriteU32(edge.edge);
      writer.WriteF32(edge.threshold);
    }
  }
  writer.WriteF64(0.0);  // build_seconds
  writer.WriteChecksum();
  return file.str();
}

void Require(bool condition, const char* what) {
  if (!condition) {
    std::fprintf(stderr, "index_io_fuzz invariant violated: %s\n", what);
    std::abort();
  }
}

void WriteSeed(const std::string& dir, const char* name,
               const std::string& bytes) {
  std::ofstream out(dir + "/" + name, std::ios::binary);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

}  // namespace
}  // namespace pitex

extern "C" int LLVMFuzzerInitialize(int* /*argc*/, char*** /*argv*/) {
  using namespace pitex;
  // Self-check: all three seeds must load before any fuzzing starts; a
  // drifted format would otherwise silently reduce the run to garbage
  // inputs bouncing off the header checks.
  const std::string v2 = ValidV2Bytes();
  const std::string v1 = ValidV1Bytes();
  const std::string delay = ValidDelayBytes();
  {
    std::stringstream file(v2);
    Require(LoadRrIndex(Network(), file) != nullptr, "v2 seed must load");
  }
  {
    std::stringstream file(v1);
    Require(LoadRrIndex(Network(), file) != nullptr, "v1 seed must load");
  }
  {
    std::stringstream file(delay);
    Require(LoadDelayMatIndex(Network(), file) != nullptr,
            "DelayMat seed must load");
  }
  if (const char* dir = std::getenv("PITEX_FUZZ_SEED_DIR")) {
    WriteSeed(dir, "seed_v2.idx", v2);
    WriteSeed(dir, "seed_v1.idx", v1);
    WriteSeed(dir, "seed_delay.idx", delay);
  }
  return 0;
}

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  using namespace pitex;
  const std::string bytes(reinterpret_cast<const char*>(data), size);
  {
    std::stringstream file(bytes);
    const auto loaded = LoadRrIndex(Network(), file);
    if (loaded != nullptr) {
      // Survivors must be internally consistent: every containment entry
      // backed by actual sketch membership.
      for (VertexId v = 0; v < Network().num_vertices(); ++v) {
        for (const uint32_t id : loaded->Containing(v)) {
          Require(id < loaded->num_graphs(), "containment id in range");
          Require(loaded->graph(id).LocalIndex(v).has_value(),
                  "containment entry backed by membership");
        }
      }
    }
  }
  {
    std::stringstream file(bytes);
    const auto loaded = LoadDelayMatIndex(Network(), file);
    if (loaded != nullptr) {
      for (VertexId v = 0; v < Network().num_vertices(); ++v) {
        Require(loaded->CountContaining(v) <= loaded->theta(),
                "DelayMat counter bounded by theta");
      }
    }
  }
  return 0;
}
