// libFuzzer harness for the write-ahead-log reader (PITEX_FUZZ=ON,
// Clang only). Complements tests/wal_test.cc: the gtest suite proves
// the torn-tail contract at every byte offset of a well-formed log,
// while this harness lets coverage feedback drive arbitrary byte soup
// through the segment header, frame, and record parsers.
//
// Contract under test: whatever bytes land in a segment file,
// ReadWalAfter either returns kOk/kTornTail with a structurally valid
// record prefix (dense LSNs ascending from after_lsn+1, in-range blob
// sizes) or refuses with kCorrupt/kIoError. Any crash, sanitizer
// report, or invariant violation (enforced with abort() below) is a
// finding.
//
// Seed corpus: set PITEX_FUZZ_SEED_DIR=<dir> and the harness writes a
// real three-record segment there during LLVMFuzzerInitialize:
//
//   mkdir -p corpus
//   PITEX_FUZZ_SEED_DIR=corpus ./wal_fuzz -max_total_time=30 corpus

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "src/serve/wal.h"

namespace pitex {
namespace {

namespace fs = std::filesystem;

void Require(bool condition, const char* what) {
  if (!condition) {
    std::fprintf(stderr, "wal_fuzz invariant violated: %s\n", what);
    std::abort();
  }
}

/// One scratch directory per process; each input rewrites the single
/// segment file in place.
const std::string& ScratchDir() {
  static const std::string dir = [] {
    const std::string d =
        (fs::temp_directory_path() / "pitex_wal_fuzz_scratch").string();
    fs::remove_all(d);
    fs::create_directories(d);
    return d;
  }();
  return dir;
}

std::string ValidSegmentBytes() {
  const std::string dir =
      (fs::temp_directory_path() / "pitex_wal_fuzz_seed").string();
  fs::remove_all(dir);
  std::string error;
  auto wal = WriteAheadLog::Open(dir, /*next_lsn=*/1, WalOptions(), &error);
  Require(wal != nullptr, "seed WAL must open");
  for (uint32_t i = 0; i < 3; ++i) {
    std::vector<EdgeInfluenceUpdate> batch(1);
    batch[0].edge = i;
    batch[0].entries = {{i, 0.25 + 0.1 * i}, {i + 1, 0.5}};
    Require(wal->Append(batch) != 0, "seed append must succeed");
  }
  Require(wal->Sync(), "seed sync must succeed");
  wal.reset();
  std::ifstream in(dir + "/" + WalSegmentName(1), std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  Require(!bytes.empty(), "seed segment must exist");
  fs::remove_all(dir);
  return bytes;
}

}  // namespace
}  // namespace pitex

extern "C" int LLVMFuzzerInitialize(int* /*argc*/, char*** /*argv*/) {
  using namespace pitex;
  // Self-check: the pristine seed must read back cleanly before any
  // fuzzing starts.
  const std::string seed = ValidSegmentBytes();
  {
    std::ofstream out(ScratchDir() + "/" + WalSegmentName(1),
                      std::ios::binary);
    out.write(seed.data(), static_cast<std::streamsize>(seed.size()));
  }
  std::vector<WalRecord> records;
  const WalReadResult result = ReadWalAfter(ScratchDir(), 0, &records);
  Require(result.status == WalReadStatus::kOk, "seed segment must read");
  Require(records.size() == 3, "seed segment must hold three records");
  if (const char* dir = std::getenv("PITEX_FUZZ_SEED_DIR")) {
    std::ofstream out(std::string(dir) + "/seed_segment.log",
                      std::ios::binary);
    out.write(seed.data(), static_cast<std::streamsize>(seed.size()));
  }
  return 0;
}

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  using namespace pitex;
  {
    std::ofstream out(ScratchDir() + "/" + WalSegmentName(1),
                      std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(data),
              static_cast<std::streamsize>(size));
  }
  std::vector<WalRecord> records;
  const WalReadResult result = ReadWalAfter(ScratchDir(), 0, &records);
  if (result.status == WalReadStatus::kOk ||
      result.status == WalReadStatus::kTornTail) {
    // Survivors must be a dense, ascending LSN prefix with sane bodies.
    uint64_t expected = 1;
    for (const WalRecord& record : records) {
      Require(record.lsn == expected, "LSNs dense from after_lsn+1");
      ++expected;
      for (const EdgeInfluenceUpdate& update : record.updates) {
        Require(update.entries.size() <= (64u << 20),
                "entry count bounded by the record size cap");
      }
    }
  } else {
    Require(records.empty() || result.status == WalReadStatus::kCorrupt,
            "failed reads surface no phantom suffix");
  }
  return 0;
}
