// End-to-end integration: all estimation methods answer the same queries
// on a generated dataset, agree on the influence magnitude, and the index
// methods agree with the online ones.

#include <memory>

#include <gtest/gtest.h>

#include "src/core/engine.h"
#include "src/datasets/synthetic.h"

namespace pitex {
namespace {

class IntegrationTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    DatasetSpec spec = LastfmSpec(0.15);
    spec.num_tags = 10;
    spec.num_topics = 5;
    network_ = new SocialNetwork(GenerateDataset(spec));
  }
  static void TearDownTestSuite() {
    delete network_;
    network_ = nullptr;
  }

  static EngineOptions Options(Method method) {
    EngineOptions options;
    options.method = method;
    options.eps = 0.3;
    options.min_samples = 2000;
    options.max_samples = 10000;
    options.index_theta_per_vertex = 300.0;
    options.seed = 11;
    return options;
  }

  static SocialNetwork* network_;
};

SocialNetwork* IntegrationTest::network_ = nullptr;

TEST_F(IntegrationTest, AllMethodsAgreeOnInfluenceOfFixedTagSet) {
  const auto users = SampleUserGroup(network_->graph, UserGroup::kHigh, 2, 3);
  ASSERT_FALSE(users.empty());
  const TagId tags[] = {1, 4};

  // Reference: high-sample Lazy.
  PitexEngine reference(network_, Options(Method::kLazy));
  for (VertexId u : users) {
    const double expected = reference.EstimateInfluence(u, tags).influence;
    for (Method method : {Method::kMc, Method::kRr, Method::kIndexEst,
                          Method::kIndexEstPlus, Method::kDelayMat}) {
      PitexEngine engine(network_, Options(method));
      engine.BuildIndex();
      const double actual = engine.EstimateInfluence(u, tags).influence;
      EXPECT_NEAR(actual, expected, 0.25 * expected + 0.3)
          << MethodName(method) << " user " << u;
    }
  }
}

TEST_F(IntegrationTest, GuaranteedMethodsFindComparableOptima) {
  const auto users = SampleUserGroup(network_->graph, UserGroup::kMid, 2, 5);
  ASSERT_FALSE(users.empty());
  for (VertexId u : users) {
    PitexEngine lazy(network_, Options(Method::kLazy));
    const PitexResult base = lazy.Explore({.user = u, .k = 2});
    for (Method method :
         {Method::kIndexEst, Method::kIndexEstPlus, Method::kDelayMat}) {
      PitexEngine engine(network_, Options(method));
      engine.BuildIndex();
      const PitexResult r = engine.Explore({.user = u, .k = 2});
      // The selected sets may differ under noise, but the achieved
      // influence must be comparable (the 1-eps/1+eps band).
      EXPECT_GT(r.influence, 0.6 * base.influence) << MethodName(method);
      EXPECT_LT(r.influence, 1.7 * base.influence + 0.5)
          << MethodName(method);
    }
  }
}

TEST_F(IntegrationTest, QueriesAreDeterministicPerEngine) {
  const auto users = SampleUserGroup(network_->graph, UserGroup::kMid, 1, 7);
  PitexEngine a(network_, Options(Method::kIndexEst));
  a.BuildIndex();
  PitexEngine b(network_, Options(Method::kIndexEst));
  b.BuildIndex();
  const PitexResult ra = a.Explore({.user = users[0], .k = 2});
  const PitexResult rb = b.Explore({.user = users[0], .k = 2});
  EXPECT_EQ(ra.tags, rb.tags);
  EXPECT_DOUBLE_EQ(ra.influence, rb.influence);
}

TEST_F(IntegrationTest, LearnedAndPlantedModelsAgreeOnHotUsers) {
  // Smoke check of the full pipeline promise: the tags PITEX returns are
  // those with posterior mass on topics the user's edges carry.
  const auto users = SampleUserGroup(network_->graph, UserGroup::kHigh, 1, 9);
  PitexEngine engine(network_, Options(Method::kLazy));
  const PitexResult r = engine.Explore({.user = users[0], .k = 2});
  ASSERT_EQ(r.tags.size(), 2u);
  const auto post = network_->topics.Posterior(r.tags);
  double support = 0.0;
  for (const auto& [w, e] : network_->graph.OutEdges(users[0])) {
    support += network_->influence.EdgeProb(e, post);
  }
  EXPECT_GT(support, 0.0);
}

}  // namespace
}  // namespace pitex
