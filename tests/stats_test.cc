#include "src/util/stats.h"

#include <gtest/gtest.h>

namespace pitex {
namespace {

TEST(RunningStatsTest, Empty) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats s;
  s.Add(4.0);
  EXPECT_EQ(s.count(), 1);
  EXPECT_EQ(s.mean(), 4.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 4.0);
  EXPECT_EQ(s.max(), 4.0);
}

TEST(RunningStatsTest, KnownMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_NEAR(s.mean(), 5.0, 1e-12);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.sum(), 40.0, 1e-12);
}

TEST(QuantileTest, MedianAndExtremes) {
  std::vector<double> v{5, 1, 3, 2, 4};
  EXPECT_NEAR(Quantile(v, 0.5), 3.0, 1e-12);
  EXPECT_NEAR(Quantile(v, 0.0), 1.0, 1e-12);
  EXPECT_NEAR(Quantile(v, 1.0), 5.0, 1e-12);
}

TEST(QuantileTest, Interpolates) {
  std::vector<double> v{0, 10};
  EXPECT_NEAR(Quantile(v, 0.25), 2.5, 1e-12);
}

TEST(QuantileTest, EmptyReturnsZero) {
  EXPECT_EQ(Quantile({}, 0.5), 0.0);
}

TEST(QuantileTest, ClampsOutOfRangeQ) {
  std::vector<double> v{1, 2, 3};
  EXPECT_NEAR(Quantile(v, -0.5), 1.0, 1e-12);
  EXPECT_NEAR(Quantile(v, 1.5), 3.0, 1e-12);
}

}  // namespace
}  // namespace pitex
