// Seeded violations for the [failpoint-hotpath] rule: PITEX_FAILPOINT
// evaluations cost a relaxed atomic load even when disarmed (and a
// registry mutex when armed), so they are banned from PITEX_NOALLOC
// bodies -- fault injection belongs at call boundaries (I/O, dispatch,
// lock acquisition), not in per-sample hot loops. Never compiled --
// selftest input only.

#include "src/util/failpoint.h"
#include "src/util/thread_annotations.h"

namespace pitex {

PITEX_NOALLOC double HotEstimate(int samples) {
  double acc = 0.0;
  for (int i = 0; i < samples; ++i) {
    if (PITEX_FAILPOINT("estimator/sample")) {  // expect(failpoint-hotpath)
      return -1.0;
    }
    acc += static_cast<double>(i);
  }
  return acc;
}

// A cold-path function may evaluate fail points freely: the rule keys on
// the PITEX_NOALLOC annotation, not on the macro itself.
bool ColdLoad() {
  if (PITEX_FAILPOINT("index_io/load")) return false;
  return true;
}

// Declarations carrying the annotation are not definitions; nothing to
// scan here.
PITEX_NOALLOC double HotDeclaredElsewhere(int samples);

// Audited escape hatch: the suppression comment must silence the rule.
PITEX_NOALLOC double HotButAudited(int samples) {
  // pitex-check: allow(failpoint-hotpath): one-shot guard outside the loop
  if (PITEX_FAILPOINT("estimator/entry")) return -1.0;
  double acc = 0.0;
  for (int i = 0; i < samples; ++i) acc += static_cast<double>(i);
  return acc;
}

}  // namespace pitex
