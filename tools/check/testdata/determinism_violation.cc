// Seeded violations for the [determinism] rule: ambient entropy breaks
// the repo's bit-reproducibility guarantees (every estimator answer is a
// pure function of its seed). Never compiled -- selftest input only.

#include <cstdlib>
#include <ctime>
#include <random>

#include "src/util/random.h"

namespace pitex {

int AmbientEntropyEverywhere() {
  std::srand(static_cast<unsigned>(time(nullptr)));  // expect(determinism)
  int noise = rand();                                // expect(determinism)
  std::random_device entropy;                        // expect(determinism)
  std::mt19937 twister(entropy());                   // expect(determinism)
  auto wall =                                        // fine: next line flags
      std::chrono::system_clock::now();              // expect(determinism)
  (void)wall;
  return noise + static_cast<int>(twister());
}

double SeededIsFine() {
  Rng rng(42);  // util/random.h: the blessed, seeded source
  return rng.NextDouble();
}

double SuppressedWallClock() {
  // pitex-check: allow(determinism): tooling-only stamp, off-estimator
  auto stamp = std::chrono::system_clock::now();
  return std::chrono::duration<double>(stamp.time_since_epoch()).count();
}

}  // namespace pitex
