// Seeded violations for the [io-checked] rule: the durability layer is
// only as honest as its error checks -- a dropped write(2)/fsync(2)
// result can acknowledge an update that never reached disk. Never
// compiled -- selftest input only.

#include <unistd.h>

#include <cstdio>
#include <fstream>

namespace pitex {

void DroppedResultsEverywhere(int fd, std::FILE* file, const char* buf) {
  write(fd, buf, 8);             // expect(io-checked)
  ::write(fd, buf, 8);           // expect(io-checked)
  fwrite(buf, 1, 8, file);       // expect(io-checked)
  std::fwrite(buf, 1, 8, file);  // expect(io-checked)
  fsync(fd);                     // expect(io-checked)
  ::fdatasync(fd);               // expect(io-checked)
  ::ftruncate(fd, 0);            // expect(io-checked)
  close(fd);                     // expect(io-checked)
  if (fd > 0) ::fsync(fd);       // expect(io-checked)
}

bool CheckedResultsAreFine(int fd, std::FILE* file, const char* buf) {
  if (::write(fd, buf, 8) != 8) return false;    // condition consumes it
  const size_t n = fwrite(buf, 1, 8, file);      // assignment consumes it
  bool ok = n == 8 && ::fsync(fd) == 0;          // expression consumes it
  ok = ok && ::close(fd) == 0;
  return ok ? ::fdatasync(fd) == 0 : false;      // ternary arm consumes it
}

void MemberCallsAndVoidCastsAreFine(std::ofstream& out, int fd,
                                   const char* buf) {
  out.write(buf, 8);   // stream state carries the error; checked later
  out.close();
  (void)::close(fd);   // explicit, audited discard
  (void)write(fd, buf, 8);
}

void SuppressedTeardown(int fd) {
  // pitex-check: allow(io-checked): best-effort close on teardown
  ::close(fd);
}

}  // namespace pitex
