// Seeded violations for the [obs-hotpath] rule: inside PITEX_NOALLOC
// bodies the only sanctioned observability forms are PITEX_COUNT (one
// relaxed fetch_add into the static hot-counter table) and PITEX_SPAN
// (a thread-local load when unsampled). Registration, registry/journal
// access, direct tracer calls, histogram observes, export rendering and
// string formatting all lock or allocate and are banned. Never
// compiled -- selftest input only.

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/util/thread_annotations.h"

namespace pitex {

PITEX_NOALLOC double HotLoop(int samples, obs::MetricsRegistry* registry,
                             obs::Histogram* latency) {
  obs::Counter* c = registry->RegisterCounter("x", "y");  // expect(obs-hotpath)
  double acc = 0.0;
  for (int i = 0; i < samples; ++i) {
    PITEX_COUNT(kSolveFrontierPops, 1);  // sanctioned: must stay quiet
    PITEX_SPAN(kSolve);                  // sanctioned: must stay quiet
    latency->Observe(static_cast<double>(i));  // expect(obs-hotpath)
    acc += static_cast<double>(i);
  }
  c->Inc();
  return acc;
}

PITEX_NOALLOC void HotTraceStart() {
  const obs::TraceContext t = obs::TraceContext::Start();  // expect(obs-hotpath)
  obs::Tracer::Instance().SetSampleEvery(1);  // expect(obs-hotpath)
  (void)t;
}

PITEX_NOALLOC void HotExport(const obs::MetricsSnapshot& snap, char* buf,
                             unsigned long n) {
  const auto text = snap.ToJson();              // expect(obs-hotpath)
  snprintf(buf, n, "%zu", text.size());         // expect(obs-hotpath)
}

// Cold paths register, observe and export freely: the rule keys on the
// PITEX_NOALLOC annotation.
void ColdSetup(obs::MetricsRegistry* registry) {
  registry->RegisterGauge("cold", "fine");
  registry->AddCollector([] {});
  obs::EventJournal journal(64);
  journal.Record(obs::EventKind::kShed);
}

// Audited escape hatch: the suppression comment silences the rule.
PITEX_NOALLOC void HotButAudited(obs::Histogram* h) {
  // pitex-check: allow(obs-hotpath): warmup-only observation before the loop
  h->Observe(0.0);
}

}  // namespace pitex
