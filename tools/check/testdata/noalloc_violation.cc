// Seeded violations for the [noalloc] rule. Each marked line must fire;
// unmarked lines must stay quiet. This file is never compiled -- it only
// feeds pitex_check.py --selftest.

#include <cstdlib>
#include <memory>
#include <vector>

#include "src/util/thread_annotations.h"

namespace pitex {

struct Scratch {
  std::vector<int> pool;
};

PITEX_NOALLOC void HotPath(int n, Scratch* scratch) {
  std::vector<int> local;
  for (int i = 0; i < n; ++i) {
    local.push_back(i);  // expect(noalloc)
  }
  scratch->pool.push_back(n);  // pooled growth through a parameter: fine
  int* raw = new int[8];  // expect(noalloc)
  void* c = malloc(16);   // expect(noalloc)
  auto owned = std::make_unique<int>(4);  // expect(noalloc)
  free(c);
  delete[] raw;
  (void)owned;
}

PITEX_NOALLOC void RefToLocalIsStillLocal(int n) {
  std::vector<int> backing;
  std::vector<int>& alias = backing;
  alias.resize(static_cast<size_t>(n));  // expect(noalloc)
}

PITEX_NOALLOC void SuppressedGrowth(int n) {
  std::vector<int> warm;
  // pitex-check: allow(noalloc): deliberate warmup growth, audited here.
  warm.reserve(static_cast<size_t>(n));
}

// A declaration alone is a contract statement, not a checkable body.
PITEX_NOALLOC void DefinedElsewhere(int n, Scratch* scratch);

void NotAnnotated(int n) {
  std::vector<int> fine;
  fine.push_back(n);  // unannotated function: no contract, no finding
}

}  // namespace pitex
