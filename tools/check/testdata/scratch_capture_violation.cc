// Seeded violations for the [scratch-capture] rule. The epoch-stamped
// scratch types are single-thread state; handing one by reference into a
// ThreadPool task shares its epoch counter and buffers across workers.
// Never compiled -- selftest input only.

#include "src/index/rr_graph.h"
#include "src/util/thread_pool.h"

namespace pitex {

void ShareScratchAcrossWorkers(ThreadPool* pool) {
  EstimateScratch scratch;
  pool->Submit([&] { scratch.Reserve(128); });  // expect(scratch-capture)
  pool->SubmitIndexed(  // expect(scratch-capture)
      [&scratch](size_t) { scratch.Reserve(64); });
  pool->Wait();
}

void PerTaskScratchIsFine(ThreadPool* pool) {
  pool->Submit([] {
    EstimateScratch scratch;  // owned by the task: no sharing
    scratch.Reserve(128);
  });
  pool->Wait();
}

void ValueStateIsFine(ThreadPool* pool) {
  size_t budget = 128;
  pool->Submit([budget] {
    EstimateScratch scratch;
    scratch.Reserve(budget);
  });
  pool->Wait();
}

}  // namespace pitex
