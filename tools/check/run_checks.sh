#!/usr/bin/env bash
# PITEX static-analysis gate. Runs everything that can run on this
# machine and says what it skipped:
#
#   1. pitex_check.py --selftest   (the rules must still fire)
#   2. pitex_check.py src tests    (the tree must be clean)
#   3. clang-tidy over src/*.cc    (requires clang-tidy on PATH and a
#      compile_commands.json; CMake exports one into the build dir)
#
# The clang -Wthread-safety gate is a compiler flag, not a step here:
# any clang build of the tree enforces it (see CMakeLists.txt).
#
# Usage: tools/check/run_checks.sh [BUILD_DIR]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/../.."
BUILD_DIR="${1:-build}"

echo "== pitex_check selftest =="
python3 tools/check/pitex_check.py --selftest

echo "== pitex_check tree scan =="
python3 tools/check/pitex_check.py src tests

if command -v clang-tidy >/dev/null 2>&1 \
    && [ -f "${BUILD_DIR}/compile_commands.json" ]; then
  echo "== clang-tidy (curated checks, see .clang-tidy) =="
  find src -name '*.cc' -print0 \
    | xargs -0 clang-tidy -p "${BUILD_DIR}" --quiet
else
  echo "== clang-tidy skipped (needs clang-tidy on PATH and" \
       "${BUILD_DIR}/compile_commands.json; CI runs it) =="
fi

echo "static checks passed"
