#!/usr/bin/env python3
"""PITEX repo-specific static checks.

Six rules encode invariants the compiler cannot see (and that no
pre-packaged linter knows about):

  noalloc          Functions annotated PITEX_NOALLOC (src/util/
                   thread_annotations.h) must not allocate on the hot
                   path. Inside an annotated *definition* the checker
                   flags `new`, malloc-family and make_unique/make_shared
                   calls, and container-growth calls (push_back, resize,
                   ...) whose receiver is a function-local value.  Growth
                   into pooled storage -- members (trailing '_'), scratch
                   parameters, or references bound to either -- is the
                   sanctioned capacity-retaining pattern and is allowed.

  scratch-capture  The epoch-stamped scratch types (EstimateScratch,
                   BestEffortScratch, BoundScratch, ReachScratch) are
                   single-thread state.  Capturing one by reference in a
                   lambda handed to ThreadPool::Submit / SubmitIndexed /
                   ParallelFor / ParallelForSlots shares it across
                   workers; the checker flags `[&]` defaults that use a
                   scratch variable and explicit `&scratch` captures.

  determinism      Reproducibility bans ambient entropy: rand/srand/
                   drand48, std::random_device, raw std::mt19937,
                   system_clock, gettimeofday and C time()/clock() are
                   flagged everywhere except src/util/random.* (the one
                   blessed entropy source).  Use util/random.h Rng.

  failpoint-hotpath
                   PITEX_FAILPOINT evaluations (src/util/failpoint.h)
                   must stay out of PITEX_NOALLOC function bodies: even
                   the disarmed fast path is a relaxed atomic load, and
                   an armed point takes a registry mutex -- neither
                   belongs in the allocation-free per-sample/per-pop hot
                   loops.  Inject faults at the call boundary (I/O,
                   dispatch, lock acquisition) instead.

  obs-hotpath      Observability inside PITEX_NOALLOC bodies is limited
                   to the two allocation-free macro forms, PITEX_COUNT
                   (static hot-counter table) and PITEX_SPAN (inert
                   thread-local load when unsampled).  Everything richer
                   -- metric registration (RegisterCounter/Gauge/
                   Histogram, AddCollector), MetricsRegistry or
                   EventJournal access, Tracer::Instance /
                   TraceContext::Start, Histogram Observe, snapshot
                   export (ToJson/ToPrometheus), and string formatting
                   (std::to_string, sprintf/snprintf) -- locks, walks a
                   registry, or allocates, and is flagged.

  io-checked       The durability layer (WAL, checkpoints, atomic
                   index saves) is only as honest as its error checks:
                   a dropped write(2)/fsync(2) result can acknowledge
                   an update that never reached disk.  Under src/ the
                   checker flags statement-position calls to the raw
                   I/O primitives (write, fwrite, fsync, fdatasync,
                   ftruncate, close) whose return value is discarded.
                   Member calls (stream.write(...)) are exempt -- stream
                   state carries the error -- and `(void)` casts count
                   as an explicit, audited discard.

Suppression: append `// pitex-check: allow(<rule>): <reason>` to the
finding line or the line directly above it.  Every suppression needs the
reason -- it is the audit trail for intended warmup-growth points.

Usage:
  pitex_check.py [--selftest] [--testdata DIR] [PATH...]

PATHs are files or directories (scanned for .h/.cc).  Exit status is 1
when findings are reported, 2 on usage errors.  --selftest runs the
rules over tools/check/testdata and verifies each `// expect(<rule>)`
marker fires and nothing else does.
"""

import os
import re
import sys

RULES = ("noalloc", "scratch-capture", "determinism",
         "failpoint-hotpath", "obs-hotpath", "io-checked")

SCRATCH_TYPES = (
    "EstimateScratch",
    "BestEffortScratch",
    "BoundScratch",
    "ReachScratch",
)

# Container calls that may (re)allocate. pop_back/clear keep capacity and
# are always fine.
GROWTH_METHODS = {
    "push_back", "emplace_back", "push_front", "emplace_front", "emplace",
    "insert", "resize", "reserve", "assign", "append",
}

ALLOC_CALLS = {
    "malloc", "calloc", "realloc", "aligned_alloc", "strdup",
    "make_unique", "make_shared",
}

SUBMIT_ENTRY_POINTS = ("Submit", "SubmitIndexed", "ParallelFor",
                       "ParallelForSlots")

SUPPRESS_RE = re.compile(r"//\s*pitex-check:\s*allow\(([a-z-]+)\)")
EXPECT_RE = re.compile(r"//\s*expect\(([a-z-]+)\)")

CPP_KEYWORDS = {
    "if", "else", "for", "while", "do", "switch", "case", "default",
    "return", "break", "continue", "goto", "sizeof", "new", "delete",
    "const", "constexpr", "static", "auto", "void", "bool", "char",
    "int", "unsigned", "signed", "long", "short", "float", "double",
    "struct", "class", "enum", "union", "template", "typename", "using",
    "namespace", "public", "private", "protected", "virtual", "override",
    "final", "noexcept", "nullptr", "true", "false", "this", "operator",
    "static_cast", "dynamic_cast", "reinterpret_cast", "const_cast",
    "co_await", "co_return", "co_yield", "throw", "try", "catch",
    "thread_local", "mutable", "inline", "extern", "friend",
}


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text):
    """Blanks comments and string/char literals, preserving line structure.

    Replaced characters become spaces (newlines are kept) so offsets and
    line numbers in the stripped text match the original.
    """
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                out.append(" ")
                i += 1
        elif c == "/" and nxt == "*":
            while i < n and not (text[i] == "*" and i + 1 < n
                                 and text[i + 1] == "/"):
                out.append("\n" if text[i] == "\n" else " ")
                i += 1
            if i < n:
                out.append("  ")
                i += 2
        elif c == '"' or c == "'":
            quote = c
            out.append(" ")
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\" and i + 1 < n:
                    out.append("  ")
                    i += 2
                else:
                    out.append("\n" if text[i] == "\n" else " ")
                    i += 1
            if i < n:
                out.append(" ")
                i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def line_of(text, offset):
    return text.count("\n", 0, offset) + 1


def suppressed_lines(raw_text):
    """rule -> set of line numbers covered by an allow() comment."""
    cover = {rule: set() for rule in RULES}
    for idx, line in enumerate(raw_text.splitlines(), start=1):
        m = SUPPRESS_RE.search(line)
        if m and m.group(1) in cover:
            # The comment covers its own line and the next one, so it
            # works both trailing and as a lead-in line.
            cover[m.group(1)].update((idx, idx + 1))
    return cover


def match_brace(text, open_pos):
    """Index one past the brace block opened at text[open_pos] == '{'."""
    depth = 0
    for i in range(open_pos, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return i + 1
    return len(text)


def match_paren(text, open_pos):
    depth = 0
    for i in range(open_pos, len(text)):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return i + 1
    return len(text)


IDENT_RE = re.compile(r"[A-Za-z_]\w*")


def parameter_names(signature):
    """Parameter names from the first top-level paren group of a
    function signature (annotation .. '{')."""
    start = signature.find("(")
    if start < 0:
        return set()
    end = match_paren(signature, start)
    group = signature[start + 1:end - 1]
    names = set()
    # Split on top-level commas only (template args carry none deep
    # enough to matter here, but guard parens/brackets anyway).
    depth = 0
    parts, cur = [], []
    for c in group:
        if c in "(<[":
            depth += 1
        elif c in ")>]":
            depth -= 1
        if c == "," and depth == 0:
            parts.append("".join(cur))
            cur = []
        else:
            cur.append(c)
    parts.append("".join(cur))
    for part in parts:
        part = part.split("=")[0]  # drop default argument
        idents = [t for t in IDENT_RE.findall(part)
                  if t not in CPP_KEYWORDS]
        if len(idents) >= 2:  # type name(s) + parameter name
            names.add(idents[-1])
    return names


DECL_RE = re.compile(
    r"""(?:^|[;{}]|\belse\b)\s*            # statement start
        (?P<type>(?:const\s+|thread_local\s+|static\s+)*
         [A-Za-z_][\w:]*(?:\s*<[^;{}()]*?>)?   # Type or Type<...>
         (?:\s*::\s*\w+)*
         (?:\s*[*&]+|\s)\s*&?\s*)
        (?P<name>[A-Za-z_]\w*)\s*
        (?P<init>=[^;]*|\([^;]*\))?;""",
    re.VERBOSE | re.MULTILINE,
)


def local_declarations(body):
    """name -> (is_reference, initializer_text) for heuristically
    detected local declarations in a function body.

    The tokenizer is scope-blind, so a name declared more than once
    (e.g. a range-for reference in one loop and a value local later)
    resolves to the *value* declaration: growth through it is flagged
    and an audited allow() comment documents the safe cases.
    """
    entries = []
    for m in DECL_RE.finditer(body):
        type_part = m.group("type")
        name = m.group("name")
        head = type_part.split("<")[0]
        first = IDENT_RE.search(head)
        if first is None or first.group(0) in (CPP_KEYWORDS - {
                "const", "auto", "unsigned", "signed", "thread_local",
                "static", "bool", "char", "int", "long", "short",
                "float", "double", "void"}):
            continue
        if name in CPP_KEYWORDS:
            continue
        is_ref = "&" in type_part and "&&" not in type_part
        init = m.group("init") or ""
        entries.append((name, is_ref, init))
    # Range-for declarations: for (Type name : range)
    for m in re.finditer(
            r"for\s*\(\s*(?P<type>[^;:()]*?[\s*&])\s*"
            r"(?P<name>[A-Za-z_]\w*)\s*:\s*(?P<range>[^)]*)\)", body):
        name = m.group("name")
        if name not in CPP_KEYWORDS:
            entries.append((name, "&" in m.group("type"),
                            m.group("range")))
    locals_ = {}
    for name, is_ref, init in entries:
        if name in locals_ and not locals_[name][0]:
            continue  # an existing value declaration stays sticky
        if name in locals_ and locals_[name][0] and not is_ref:
            locals_[name] = (is_ref, init)  # value decl wins over ref
            continue
        locals_[name] = (is_ref, init)
    return locals_


def receiver_root(body, method_pos):
    """Walks backwards from `.method(` / `->method(` to the chain root.

    Handles ident chains with ., ->, [..] subscripts and a (*name)
    parenthesized-dereference head. Returns the root identifier or None.
    """
    i = method_pos  # index of '.' or '-' starting the final accessor
    while True:
        # Skip the accessor itself ('.' or '->'; GROWTH_RE matches start
        # at '.' or '-', chain continuation lands on '>').
        if body[i] == ".":
            i -= 1
        elif body[i] == "-":
            i -= 1
        elif body[i] == ">" and i > 0 and body[i - 1] == "-":
            i -= 2
        else:
            return None
        # Skip one postfix unit: ident, [..] groups, or (*ident).
        while i >= 0 and body[i] == "]":
            depth = 0
            while i >= 0:
                if body[i] == "]":
                    depth += 1
                elif body[i] == "[":
                    depth -= 1
                    if depth == 0:
                        break
                i -= 1
            i -= 1
        if i >= 0 and body[i] == ")":
            # Possible (*name) deref head.
            j = i
            depth = 0
            while j >= 0:
                if body[j] == ")":
                    depth += 1
                elif body[j] == "(":
                    depth -= 1
                    if depth == 0:
                        break
                j -= 1
            inner = body[j + 1:i].strip()
            m = re.fullmatch(r"\*\s*([A-Za-z_]\w*)", inner)
            if m:
                return m.group(1)
            return None  # call-result receiver: can't resolve, allow
        # Identifier.
        end = i + 1
        while i >= 0 and (body[i].isalnum() or body[i] == "_"):
            i -= 1
        ident = body[i + 1:end]
        if not ident:
            return None
        nxt = body[:i + 1].rstrip()
        if nxt.endswith(".") or nxt.endswith("->"):
            i = len(nxt) - 1
            continue  # keep walking toward the root
        if ident == "this":
            return "this"
        return ident


def resolve_root(root, params, locals_, depth=0):
    """'allowed' | 'local' classification of a growth-call receiver."""
    if root is None or depth > 4:
        return "allowed"
    if root == "this" or root.endswith("_"):
        return "allowed"  # member: pooled storage by convention
    if root in params:
        return "allowed"  # caller-owned scratch / out-param
    if root in locals_:
        is_ref, init = locals_[root]
        if not is_ref:
            return "local"
        # Reference local: allowed iff it can bind to pooled storage.
        for ident in IDENT_RE.findall(init):
            if ident in CPP_KEYWORDS:
                continue
            if ident == root:
                continue
            if (ident.endswith("_") or ident in params
                    or resolve_root(ident, params, locals_, depth + 1)
                    == "allowed" and ident in locals_):
                return "allowed"
        return "local"
    return "allowed"  # unknown (global/enclosing scope): benefit of doubt


GROWTH_RE = re.compile(
    r"(?:\.|->)\s*(" + "|".join(sorted(GROWTH_METHODS)) + r")\s*\(")
NEW_RE = re.compile(r"\bnew\b(?!\s*\()")  # plain new; placement-new too
ALLOC_RE = re.compile(
    r"\b(" + "|".join(sorted(ALLOC_CALLS)) + r")\s*(?:<[^;()]*>)?\s*\(")


def check_noalloc(path, raw, text):
    findings = []
    pos = 0
    while True:
        pos = text.find("PITEX_NOALLOC", pos)
        if pos < 0:
            break
        anchor = pos
        pos += len("PITEX_NOALLOC")
        # Definition or declaration? Scan to the first ';' or '{' at
        # paren depth 0 (the constructor init list keeps depth at 0 for
        # its commas but its parens are balanced before the brace).
        depth = 0
        i = pos
        while i < len(text):
            c = text[i]
            if c == "(":
                depth += 1
            elif c == ")":
                depth -= 1
            elif depth == 0 and c in ";{":
                break
            i += 1
        if i >= len(text) or text[i] == ";":
            continue  # declaration only; the definition is checked where
            #           it carries its own annotation
        signature = text[anchor:i]
        body_end = match_brace(text, i)
        body = text[i:body_end]
        body_base = line_of(text, i)
        params = parameter_names(signature)
        locals_ = local_declarations(body)

        for m in NEW_RE.finditer(body):
            findings.append(Finding(
                path, body_base + body.count("\n", 0, m.start()),
                "noalloc", "operator new in PITEX_NOALLOC function"))
        for m in ALLOC_RE.finditer(body):
            findings.append(Finding(
                path, body_base + body.count("\n", 0, m.start()),
                "noalloc",
                f"allocating call '{m.group(1)}' in PITEX_NOALLOC "
                "function"))
        for m in GROWTH_RE.finditer(body):
            root = receiver_root(body, m.start())
            if resolve_root(root, params, locals_) == "local":
                findings.append(Finding(
                    path, body_base + body.count("\n", 0, m.start()),
                    "noalloc",
                    f"'{root}.{m.group(1)}()' grows a function-local "
                    "container; route growth through caller-owned "
                    "scratch or a pooled member"))
        pos = body_end
    return findings


def noalloc_bodies(text):
    """Yields (body_start_offset, body_text) for every PITEX_NOALLOC
    function *definition* (declarations are skipped), using the same
    annotation-to-brace scan as check_noalloc."""
    pos = 0
    while True:
        pos = text.find("PITEX_NOALLOC", pos)
        if pos < 0:
            return
        pos += len("PITEX_NOALLOC")
        depth = 0
        i = pos
        while i < len(text):
            c = text[i]
            if c == "(":
                depth += 1
            elif c == ")":
                depth -= 1
            elif depth == 0 and c in ";{":
                break
            i += 1
        if i >= len(text) or text[i] == ";":
            continue  # declaration only
        body_end = match_brace(text, i)
        yield i, text[i:body_end]
        pos = body_end


FAILPOINT_RE = re.compile(r"\bPITEX_FAILPOINT\s*\(")


def check_failpoint_hotpath(path, raw, text):
    findings = []
    for body_start, body in noalloc_bodies(text):
        body_base = line_of(text, body_start)
        for m in FAILPOINT_RE.finditer(body):
            findings.append(Finding(
                path, body_base + body.count("\n", 0, m.start()),
                "failpoint-hotpath",
                "PITEX_FAILPOINT inside a PITEX_NOALLOC function: even "
                "disarmed it costs an atomic load per evaluation; inject "
                "faults at the call boundary instead"))
    return findings


# Observability constructs too heavy for PITEX_NOALLOC bodies: each
# pattern pairs with the reason shown in the finding. PITEX_COUNT and
# PITEX_SPAN are deliberately absent -- they are the sanctioned forms.
OBS_HOTPATH_BANNED = [
    (re.compile(r"\bRegister(?:Counter|Gauge|Histogram)\s*\("),
     "metric registration takes the registry mutex"),
    (re.compile(r"\bAddCollector\s*\("),
     "collector registration takes the registry mutex"),
    (re.compile(r"\bMetricsRegistry\b"),
     "registry access locks and allocates"),
    (re.compile(r"\bEventJournal\b"),
     "journal construction allocates its ring"),
    (re.compile(r"\bHotCountersSnapshot\s*\("),
     "snapshot assembly allocates"),
    (re.compile(r"\bTracer\s*::\s*Instance\b"),
     "direct tracer access bypasses the sampling-gated macro"),
    (re.compile(r"\bTraceContext\s*::\s*Start\b"),
     "trace starts belong at the serving boundary, not the hot loop"),
    (re.compile(r"(?:\.|->)\s*Observe\s*\("),
     "Histogram::Observe scans buckets and CAS-loops the sum"),
    (re.compile(r"\b(?:ToJson|ToPrometheus)\s*\("),
     "export rendering allocates strings"),
    (re.compile(r"\bto_string\s*\("),
     "std::to_string allocates"),
    (re.compile(r"\bsn?printf\s*\("),
     "printf-family formatting does not belong on the hot path"),
]


def check_obs_hotpath(path, raw, text):
    findings = []
    for body_start, body in noalloc_bodies(text):
        body_base = line_of(text, body_start)
        for pattern, reason in OBS_HOTPATH_BANNED:
            for m in pattern.finditer(body):
                findings.append(Finding(
                    path, body_base + body.count("\n", 0, m.start()),
                    "obs-hotpath",
                    f"{reason}; inside PITEX_NOALLOC bodies report only "
                    "through PITEX_COUNT / PITEX_SPAN"))
    return findings


def scratch_variables(text):
    """name -> line of variables declared with an epoch-stamped scratch
    type anywhere in the file (values, pointers or references)."""
    names = {}
    pattern = re.compile(
        r"\b(" + "|".join(SCRATCH_TYPES) + r")\b[\s*&]+([A-Za-z_]\w*)")
    for m in pattern.finditer(text):
        line = line_of(text, m.start())
        # Keep the earliest declaration: for a scope-blind [&] check, any
        # declaration above the Submit call makes the capture suspect.
        names[m.group(2)] = min(names.get(m.group(2), line), line)
    return names


def check_scratch_capture(path, raw, text):
    findings = []
    scratch_vars = scratch_variables(text)
    if not scratch_vars:
        return findings
    for entry in SUBMIT_ENTRY_POINTS:
        for m in re.finditer(r"\b" + entry + r"\s*\(", text):
            call_line = line_of(text, m.start())
            args_start = m.end()
            args_end = match_paren(text, args_start - 1)
            args = text[args_start:args_end - 1]
            # Lambda argument(s): [...](...) { ... }
            for lam in re.finditer(r"\[([^\]]*)\]", args):
                captures = [c.strip() for c in lam.group(1).split(",")
                            if c.strip()]
                lam_body_open = args.find("{", lam.end())
                lam_body = (args[lam_body_open:
                                 match_brace(args, lam_body_open)]
                            if lam_body_open >= 0 else "")
                for cap in captures:
                    if cap == "&":
                        # Default by-ref: flag scratch vars used in the
                        # body that were declared above the call.
                        for name, decl_line in scratch_vars.items():
                            if decl_line >= call_line:
                                continue
                            if re.search(r"\b" + name + r"\b", lam_body):
                                findings.append(Finding(
                                    path, call_line, "scratch-capture",
                                    f"lambda passed to {entry}() captures "
                                    f"scratch '{name}' by reference "
                                    "([&]); scratch types are "
                                    "single-thread state -- declare one "
                                    "inside the task"))
                    else:
                        cm = re.fullmatch(r"&\s*([A-Za-z_]\w*)", cap)
                        if cm and cm.group(1) in scratch_vars:
                            findings.append(Finding(
                                path, call_line, "scratch-capture",
                                f"lambda passed to {entry}() captures "
                                f"scratch '{cm.group(1)}' by reference; "
                                "scratch types are single-thread state "
                                "-- declare one inside the task"))
    return findings


DETERMINISM_BANNED = [
    (re.compile(r"\brand\s*\("), "rand()"),
    (re.compile(r"\bsrand\s*\("), "srand()"),
    (re.compile(r"\bdrand48\s*\("), "drand48()"),
    (re.compile(r"\brandom_device\b"), "std::random_device"),
    (re.compile(r"\bmt19937(_64)?\b"), "raw std::mt19937"),
    (re.compile(r"\bsystem_clock\b"), "system_clock (wall time)"),
    (re.compile(r"\bgettimeofday\s*\("), "gettimeofday()"),
    (re.compile(r"(?<![\w:.>])time\s*\(\s*(?:NULL|nullptr|0)?\s*\)"),
     "time()"),
    (re.compile(r"(?<![\w:.>])clock\s*\(\s*\)"), "clock()"),
]


def check_determinism(path, raw, text):
    findings = []
    norm = path.replace(os.sep, "/")
    if "src/util/random." in norm:
        return findings  # the one blessed entropy source
    for pattern, label in DETERMINISM_BANNED:
        for m in pattern.finditer(text):
            findings.append(Finding(
                path, line_of(text, m.start()), "determinism",
                f"{label} breaks reproducibility; use util/random.h Rng "
                "(seeded, counter-based)"))
    return findings


# Raw I/O primitives whose int return carries the only failure signal.
IO_CALLS = ("close", "fdatasync", "fsync", "ftruncate", "fwrite", "write")
IO_CALL_RE = re.compile(r"\b(" + "|".join(IO_CALLS) + r")\s*\(")


def check_io_checked(path, raw, text):
    """Flags statement-position raw I/O calls whose result is dropped.

    Scoped to src/ (the durability-bearing tree); tests and tools may
    discard results freely (pipes to dying children, best-effort
    cleanup). The testdata directory stays in scope so the selftest can
    exercise the rule.
    """
    findings = []
    norm = path.replace(os.sep, "/")
    if not (norm.startswith("src/") or "/src/" in norm
            or "tools/check/testdata" in norm):
        return findings

    def prev_nonspace(j):
        while j >= 0 and text[j] in " \t\n":
            j -= 1
        return j

    for m in IO_CALL_RE.finditer(text):
        name = m.group(1)
        j = prev_nonspace(m.start() - 1)
        if j >= 1 and text[j] == ":" and text[j - 1] == ":":
            # Qualified call: global `::write` stays in scope; `std::`
            # resolves to the same primitive; any other qualifier is a
            # different function that happens to share the name.
            j = prev_nonspace(j - 2)
            end = j
            while j >= 0 and (text[j].isalnum() or text[j] == "_"):
                j -= 1
            qualifier = text[j + 1:end + 1]
            if qualifier and qualifier != "std":
                continue
            j = prev_nonspace(j)
        if j >= 0 and text[j] in ".>":
            continue  # member call: the object carries the error state
        if j >= 0 and text[j] == ":":
            continue  # label / ternary arm: value is consumed
        if j >= 0 and text[j] == ")":
            # Walk back over the closing paren group: `(void)` casts are
            # an explicit audited discard; anything else reaching here
            # (e.g. a braceless `if (...) fsync(fd);`) still drops the
            # result.
            k, depth = j, 0
            while k >= 0:
                if text[k] == ")":
                    depth += 1
                elif text[k] == "(":
                    depth -= 1
                    if depth == 0:
                        break
                k -= 1
            if text[k + 1:j].strip() == "void":
                continue
        elif j >= 0 and text[j] not in ";{}":
            continue  # value consumed (assignment, condition, argument)
        findings.append(Finding(
            path, line_of(text, m.start()), "io-checked",
            f"unchecked '{name}()' return: a dropped I/O result can "
            "acknowledge data that never reached disk; test the result "
            "or cast to (void) with an allow() reason"))
    return findings


def check_file(path):
    with open(path, encoding="utf-8", errors="replace") as f:
        raw = f.read()
    text = strip_comments_and_strings(raw)
    cover = suppressed_lines(raw)
    findings = []
    findings += check_noalloc(path, raw, text)
    findings += check_scratch_capture(path, raw, text)
    findings += check_determinism(path, raw, text)
    findings += check_failpoint_hotpath(path, raw, text)
    findings += check_obs_hotpath(path, raw, text)
    findings += check_io_checked(path, raw, text)
    return [f for f in findings if f.line not in cover[f.rule]]


def collect_files(paths):
    files = []
    for p in paths:
        if os.path.isdir(p):
            for root, _dirs, names in os.walk(p):
                for name in sorted(names):
                    if name.endswith((".h", ".cc")):
                        files.append(os.path.join(root, name))
        elif os.path.isfile(p):
            files.append(p)
        else:
            print(f"pitex_check: no such path: {p}", file=sys.stderr)
            sys.exit(2)
    return files


def selftest(testdata_dir):
    """Each testdata file declares its expected findings with trailing
    `// expect(<rule>)` markers; everything else must stay quiet."""
    failures = []
    files = collect_files([testdata_dir])
    if not files:
        print(f"selftest: no testdata under {testdata_dir}",
              file=sys.stderr)
        return 1
    fired = {rule: 0 for rule in RULES}
    for path in files:
        with open(path, encoding="utf-8") as f:
            raw = f.read()
        expected = {}  # line -> set(rules)
        for idx, line in enumerate(raw.splitlines(), start=1):
            for m in EXPECT_RE.finditer(line):
                expected.setdefault(idx, set()).add(m.group(1))
        got = {}
        for finding in check_file(path):
            got.setdefault(finding.line, set()).add(finding.rule)
            fired[finding.rule] += 1
        for line, rules in sorted(expected.items()):
            missing = rules - got.get(line, set())
            for rule in sorted(missing):
                failures.append(
                    f"{path}:{line}: expected [{rule}] finding did not "
                    "fire")
        for line, rules in sorted(got.items()):
            unexpected = rules - expected.get(line, set())
            for rule in sorted(unexpected):
                failures.append(
                    f"{path}:{line}: unexpected [{rule}] finding")
    for rule in RULES:
        if fired[rule] == 0:
            failures.append(
                f"selftest never exercised rule [{rule}]; add a "
                "testdata case")
    for failure in failures:
        print(failure, file=sys.stderr)
    print(f"selftest: {len(files)} files, "
          f"{sum(fired.values())} findings fired, "
          f"{len(failures)} failures")
    return 1 if failures else 0


def main(argv):
    args = argv[1:]
    if "--selftest" in args:
        args.remove("--selftest")
        default_dir = os.path.join(os.path.dirname(
            os.path.abspath(__file__)), "testdata")
        testdata_dir = args[0] if args else default_dir
        return selftest(testdata_dir)
    if not args:
        print(__doc__, file=sys.stderr)
        return 2
    findings = []
    files = collect_files(args)
    for path in files:
        findings.extend(check_file(path))
    for finding in findings:
        print(finding)
    print(f"pitex_check: {len(files)} files, {len(findings)} findings")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
